#include "par/timewarp_engine.h"

#include <algorithm>
#include <deque>
#include <exception>
#include <unordered_map>

#include "fault/fault_injector.h"
#include "par/calqueue.h"
#include "par/state_save.h"

namespace csca {

// ---------------------------------------------------------------------------
// Shard: one optimistic event loop. Owns a subset of nodes, their
// pending and processed-but-uncommitted events, their state snapshots,
// and the undo records that make every speculative side effect exactly
// reversible. Implements EngineBackend so protocol Contexts route sends
// straight here.
// ---------------------------------------------------------------------------

struct TimeWarpEngine::Shard final : public EngineBackend {
  Shard(TimeWarpEngine* engine, int shard_id)
      : eng(engine), id(shard_id), states(&engine->processes_) {}

  /// A pending event: arrival time, birth certificate (parent handler's
  /// lineage + send index within that handler), and the arena slot
  /// holding the message body. Same ordering as ShardEngine's Entry.
  struct Entry {
    double t = 0;
    const Lineage* parent = nullptr;
    std::uint32_t send_index = 0;
    std::uint32_t slot = 0;
  };

  // -- ordering (same total order as ShardEngine::Shard, compared by
  // value) ------------------------------------------------------------------
  //
  // ShardEngine can compare lineage chains by pointer: each handler
  // executes once, so a record's address is its identity. Under Time
  // Warp a positive that was annihilated and later re-sent (its sender
  // rolled back and re-executed) reaches the receiver as a fresh slot,
  // and its re-executed ancestors republish records that are value-equal
  // but pointer-distinct to the originals. Descendants of the original
  // and of the re-send can transiently coexist in one pending queue (the
  // original's are dead, awaiting their scrub), so pointer-based
  // equality would declare such chains incomparable — and a single
  // incomparable pair breaks the strict weak ordering the pending heap
  // needs, corrupting pop order between unrelated entries. The walk
  // below therefore treats pointer-distinct levels with equal
  // (t, send_index) as equal and carries the root-most send-index
  // divergence as the tie, so duplicates land in the same equivalence
  // class as their originals and every genuinely distinct pair stays
  // strictly ordered.

  /// Compares two chains leaf-up by value: <0, 0, >0. `tie` seeds the
  /// send-index divergence of a deeper (leaf-ward) level; a difference
  /// found closer to the root overrides it.
  static int lineage_cmp(const Lineage* a, const Lineage* b, int tie) {
    while (true) {
      if (a == b) return tie;
      if (a->t != b->t) return a->t < b->t ? -1 : 1;
      if (a->parent == nullptr || b->parent == nullptr) {
        if (a->origin != b->origin) return a->origin < b->origin ? -1 : 1;
        return tie;
      }
      if (a->send_index != b->send_index) {
        tie = a->send_index < b->send_index ? -1 : 1;
      }
      if (a->parent == b->parent) return tie;
      a = a->parent;
      b = b->parent;
    }
  }

  static bool lineage_before(const Lineage* a, const Lineage* b) {
    return lineage_cmp(a, b, 0) < 0;
  }

  static bool entry_before(const Entry& x, const Entry& y) {
    if (x.t != y.t) return x.t < y.t;
    if (x.parent == y.parent) return x.send_index < y.send_index;
    // Pointer-distinct parents: the entries' own send indices are the
    // leaf-level tie, decisive exactly when the parents are duplicates.
    const int tie = x.send_index < y.send_index
                        ? -1
                        : (x.send_index > y.send_index ? 1 : 0);
    return lineage_cmp(x.parent, y.parent, tie) < 0;
  }

  struct EntryTime {
    double operator()(const Entry& e) const { return e.t; }
  };
  struct EntryAfter {
    bool operator()(const Entry& x, const Entry& y) const {
      return entry_before(y, x);
    }
  };

  // -- speculative side-effect journal -------------------------------------

  /// One reversible side effect of a speculatively executed handler.
  /// rollback_from replays an event's records in reverse, so after undo
  /// every engine-level counter holds the exact value it had before the
  /// handler ran — the re-execution then re-draws byte-identical keyed
  /// delays and fault fates.
  struct Undo {
    enum Kind : std::uint8_t {
      kCount,    ///< a: channel — consumed one per-channel send count
      kArrival,  ///< a: channel, d: previous FIFO clamp value
      kCharge,   ///< a: channel, cls: class index — one ledger charge
      kLocal,    ///< a: slot — enqueued a same-shard event
      kCross,    ///< a: uid, dest: shard, d: arrival t — cross send
      kFinish,   ///< a: node — set its finish time (was unset)
    };
    Kind kind = kCount;
    std::uint8_t cls = 0;
    std::int32_t dest = 0;
    std::uint64_t a = 0;
    double d = 0;
  };

  /// A processed-but-uncommitted event, in entry order: everything
  /// needed to either commit it (bill the ledger deltas, fossil-collect
  /// the snapshot) or roll it back (undo records, snapshot handle).
  struct Done {
    Entry entry;
    NodeId node = kNoNode;
    std::uint32_t save = 0;
    std::int64_t alg_msgs = 0;
    std::int64_t ctl_msgs = 0;
    std::int64_t rec_msgs = 0;
    Weight alg_cost = 0;
    Weight ctl_cost = 0;
    Weight rec_cost = 0;
    bool is_edge = false;
    std::vector<Undo> undo;
    /// Exception the handler threw, if any. A throw during speculation
    /// may just mean the event ran on a mis-ordered history (e.g. a
    /// protocol invariant sees an ack before its cross-shard send has
    /// arrived), so it is held rather than raised: a rollback discards
    /// it with the speculation, and only if the event commits — its
    /// history then provably equal to the sequential run's — does the
    /// error surface, exactly where the sequential engine would throw.
    std::exception_ptr error;
  };

  // -- message slots --------------------------------------------------------

  /// Slot lifecycle. A slot keeps its message body across delivery
  /// (rollback re-delivers from it); it frees only at commit or when a
  /// dead (annihilated) entry is scrubbed off the pending queue.
  enum : std::uint8_t { kEmpty = 0, kPendingSlot, kProcessedSlot, kDeadSlot };

  std::uint32_t alloc_slot(Message&& m) {
    std::uint32_t slot;
    if (!free_slots.empty()) {
      slot = free_slots.back();
      free_slots.pop_back();
      slots[slot] = std::move(m);
    } else {
      slot = static_cast<std::uint32_t>(slots.size());
      slots.push_back(std::move(m));
      slot_entry.push_back(Entry{});
      slot_state.push_back(kEmpty);
      slot_uid.push_back(0);
      slot_lineage.push_back(nullptr);
    }
    slot_lineage[slot] = nullptr;
    return slot;
  }

  void free_slot(std::uint32_t slot) {
    if (slot_uid[slot] != 0) {
      by_uid.erase(slot_uid[slot]);
      slot_uid[slot] = 0;
    }
    slot_state[slot] = kEmpty;
    free_slots.push_back(slot);
  }

  void push_local(double t, const Lineage* parent, std::uint32_t send_index,
                  Message&& m) {
    const std::uint32_t slot = alloc_slot(std::move(m));
    const Entry en{t, parent, send_index, slot};
    slot_state[slot] = kPendingSlot;
    slot_entry[slot] = en;
    slot_uid[slot] = 0;
    pending.push(en);
    if (recording) {
      cur_undo.push_back(Undo{Undo::kLocal, 0, 0, slot, 0.0});
    }
  }

  // -- lineage (identical arena discipline to ShardEngine) -----------------

  const Lineage* handler_lineage() {
    if (cur_lineage == nullptr) {
      if (cur_is_start) {
        arena.push_back(Lineage{-1.0, nullptr, 0, cur_node});
        cur_lineage = &arena.back();
      } else if (slot_lineage[cur_slot] != nullptr) {
        // Re-execution after a rollback republishes the record the
        // first execution allocated: pre- and post-rollback descendants
        // then share chain pointers, which keeps lineage_cmp on its
        // cheap pointer-equality exits and bounds arena growth. (The
        // comparison itself is value-based, so the duplicates that slot
        // memoization cannot prevent — an annihilated positive re-sent
        // into a fresh slot — still order correctly.)
        cur_lineage = slot_lineage[cur_slot];
      } else {
        arena.push_back(Lineage{now, cur_parent, cur_send_index, cur_node});
        cur_lineage = &arena.back();
        slot_lineage[cur_slot] = cur_lineage;
      }
    }
    return cur_lineage;
  }

  // -- EngineBackend -------------------------------------------------------

  double engine_now() const override { return now; }
  const Graph& engine_graph() const override { return *eng->graph_; }

  /// Bills one message of class cls on `channel`: the engine-level
  /// per-channel count moves immediately (undoable), but the RunStats
  /// deltas accumulate on the *current event* and reach the committed
  /// ledger only if GVT passes it — never speculatively.
  void bill(MsgClass cls, Weight w, std::size_t channel) {
    ++eng->channel_messages_[class_index(cls)][channel];
    if (recording) {
      cur_undo.push_back(Undo{Undo::kCharge,
                              static_cast<std::uint8_t>(class_index(cls)), 0,
                              channel, 0.0});
      if (cls == MsgClass::kAlgorithm) {
        ++cur_alg_msgs;
        cur_alg_cost += w;
      } else if (cls == MsgClass::kControl) {
        ++cur_ctl_msgs;
        cur_ctl_cost += w;
      } else {
        ++cur_rec_msgs;
        cur_rec_cost += w;
      }
    } else {
      // on_start sends run once, before any speculation, and can never
      // be rolled back: they commit immediately.
      if (cls == MsgClass::kAlgorithm) {
        ++start_stats.algorithm_messages;
        start_stats.algorithm_cost += w;
      } else if (cls == MsgClass::kControl) {
        ++start_stats.control_messages;
        start_stats.control_cost += w;
      } else {
        ++start_stats.recovery_messages;
        start_stats.recovery_cost += w;
      }
    }
  }

  std::uint64_t next_uid() {
    return (static_cast<std::uint64_t>(id + 1) << 48) | uid_counter++;
  }

  void route(int dest, double t, const Lineage* lin, std::uint32_t idx,
             Message&& m) {
    if (dest == id) {
      push_local(t, lin, idx, std::move(m));
    } else {
      const std::uint64_t uid = next_uid();
      outbox[static_cast<std::size_t>(dest)].push_back(
          TwCross{t, lin, idx, uid, false, std::move(m)});
      if (recording) {
        cur_undo.push_back(Undo{Undo::kCross, 0, dest, uid, t});
      }
    }
  }

  void engine_send(NodeId from, EdgeId e, Message m, MsgClass cls) override {
    const Graph& g = *eng->graph_;
    const Edge& edge = g.edge(e);
    require(edge.u == from || edge.v == from,
            "process may only send on its own incident edges");
    // Same directed-channel FIFO clamp and keyed draw as the sequential
    // engine and ShardEngine. The channel's unique sender node lives in
    // exactly this shard, so counters — and their rollback rewinds,
    // which run on this same worker — are race-free.
    const std::size_t channel =
        static_cast<std::size_t>(2 * e) + (from == edge.u ? 0 : 1);
    if (eng->faults_ != nullptr) {
      engine_send_faulty(from, e, edge, channel, std::move(m), cls);
      return;
    }
    const double d = eng->delay_->delay_keyed(
        e, edge.w,
        channel_delay_key(eng->seed_, channel, eng->channel_sends_[channel]++));
    if (recording) cur_undo.push_back(Undo{Undo::kCount, 0, 0, channel, 0.0});
    require(d >= 0.0 && d <= static_cast<double>(edge.w),
            "delay model produced delay outside [0, w(e)]");
    require(d >= eng->delay_->min_delay(e, edge.w),
            "delay model drew below its declared min_delay");
    if (recording) {
      cur_undo.push_back(
          Undo{Undo::kArrival, 0, 0, channel, eng->last_arrival_[channel]});
    }
    const double arrival = std::max(now + d, eng->last_arrival_[channel]);
    eng->last_arrival_[channel] = arrival;

    m.from = from;
    m.edge = e;
    bill(cls, edge.w, channel);

    const Lineage* lin = handler_lineage();
    require(sends_in_handler != UINT32_MAX, "send index space exhausted");
    const std::uint32_t idx = sends_in_handler++;
    const NodeId to = g.other(e, from);
    route(eng->part_.shard(to), arrival, lin, idx, std::move(m));
  }

  /// Mirror of ShardEngine::engine_send_faulty (itself a mirror of the
  /// sequential engine's): identical keyed fate for the identical
  /// logical send, identical count-consumption and FIFO-clamp order —
  /// and every consumed count / clamp update journaled, so a rolled-back
  /// faulted send replays its exact fate on re-execution.
  void engine_send_faulty(NodeId from, EdgeId e, const Edge& edge,
                          std::size_t channel, Message m, MsgClass cls) {
    const FaultInjector& faults = *eng->faults_;
    if (faults.crashed(from, now)) return;
    const std::uint64_t count = eng->channel_sends_[channel]++;
    if (recording) cur_undo.push_back(Undo{Undo::kCount, 0, 0, channel, 0.0});
    const FaultInjector::SendFate fate = faults.send_fate(channel, count);
    if (fate.drop || faults.link_down(e, now)) {
      bill(cls, edge.w, channel);
      return;
    }
    const double d = eng->delay_->delay_keyed(
        e, edge.w, channel_delay_key(eng->seed_, channel, count));
    require(d >= 0.0 && d <= static_cast<double>(edge.w),
            "delay model produced delay outside [0, w(e)]");
    require(d >= eng->delay_->min_delay(e, edge.w),
            "delay model drew below its declared min_delay");
    const double arrival = std::max(now + d, eng->last_arrival_[channel]);
    const NodeId to = eng->graph_->other(e, from);
    if (faults.link_down(e, arrival) || faults.crashed(to, arrival)) {
      bill(cls, edge.w, channel);
      return;
    }
    if (recording) {
      cur_undo.push_back(
          Undo{Undo::kArrival, 0, 0, channel, eng->last_arrival_[channel]});
    }
    eng->last_arrival_[channel] = arrival;
    m.from = from;
    m.edge = e;
    if (fate.garble) faults.garble(channel, count, m);
    // Byzantine sender corruption, before the duplicate splits off —
    // same order as Network::engine_send_faulty. Pure keyed function of
    // (seed, salt, channel, count): a rolled-back corrupted send
    // re-corrupts identically on re-execution.
    if (faults.byzantine(from)) {
      const auto byz = faults.byzantine_fate(channel, count);
      if (byz == FaultInjector::ByzantineFate::kEquivocate) {
        faults.equivocate(channel, count, m);
      } else if (byz == FaultInjector::ByzantineFate::kForge) {
        faults.forge(channel, count, m);
      }
    }
    Message dup;
    if (fate.duplicate) dup = m;
    bill(cls, edge.w, channel);
    const Lineage* lin = handler_lineage();
    require(sends_in_handler != UINT32_MAX, "send index space exhausted");
    const std::uint32_t idx = sends_in_handler++;
    const int dest = eng->part_.shard(to);
    route(dest, arrival, lin, idx, std::move(m));
    if (fate.duplicate) {
      const double d2 = eng->delay_->delay_keyed(
          e, edge.w, faults.dup_delay_key(channel, count));
      require(d2 >= 0.0 && d2 <= static_cast<double>(edge.w),
              "delay model produced delay outside [0, w(e)]");
      require(d2 >= eng->delay_->min_delay(e, edge.w),
              "delay model drew below its declared min_delay");
      const double arr2 = std::max(now + d2, eng->last_arrival_[channel]);
      if (!faults.link_down(e, arr2) && !faults.crashed(to, arr2)) {
        require(sends_in_handler != UINT32_MAX, "send index space exhausted");
        const std::uint32_t idx2 = sends_in_handler++;
        route(dest, arr2, lin, idx2, std::move(dup));
      }
    }
  }

  void engine_schedule_self(NodeId v, double delay, Message m) override {
    require(delay >= 0.0, "self-delivery delay must be non-negative");
    if (eng->faults_ != nullptr && eng->faults_->crashed(v, now + delay))
      return;
    m.from = v;
    m.edge = kNoEdge;
    const Lineage* lin = handler_lineage();
    require(sends_in_handler != UINT32_MAX, "send index space exhausted");
    const std::uint32_t idx = sends_in_handler++;
    push_local(now + delay, lin, idx, std::move(m));
  }

  void engine_finish(NodeId v) override {
    double& t = eng->finish_time_[static_cast<std::size_t>(v)];
    if (t < 0) {
      t = now;
      if (recording) {
        cur_undo.push_back(Undo{Undo::kFinish, 0, 0,
                                static_cast<std::uint64_t>(v), 0.0});
      }
    }
  }

  // -- rollback ------------------------------------------------------------

  /// Undoes every processed event at or after `cut` in entry order,
  /// newest first: side effects replay in reverse, protocol state
  /// restores from its pre-event snapshot, cross-shard sends turn into
  /// anti-messages, local children die in place, and the event itself
  /// re-enters the pending queue for re-execution. Committed events are
  /// never reached: commitment requires t < GVT, and every straggler or
  /// anti-message has t >= GVT (it was in flight, and hence a GVT
  /// floor, at the barrier before it arrived).
  /// Replays one journal record in reverse.
  void undo_one(const Undo& u) {
    switch (u.kind) {
      case Undo::kCount:
        --eng->channel_sends_[u.a];
        break;
      case Undo::kArrival:
        eng->last_arrival_[u.a] = u.d;
        break;
      case Undo::kCharge:
        --eng->channel_messages_[u.cls][u.a];
        break;
      case Undo::kLocal: {
        // The child is pending: if it had been processed it sits
        // later in the done suffix and was undone before its
        // parent, and it cannot have committed (its time is at or
        // above the cut's, which is at or above GVT).
        require(slot_state[u.a] == kPendingSlot,
                "rollback found a local child in an impossible state");
        slot_state[u.a] = kDeadSlot;
        break;
      }
      case Undo::kCross:
        outbox[static_cast<std::size_t>(u.dest)].push_back(
            TwCross{u.d, nullptr, 0, u.a, true, Message{}});
        ++anti_sent;
        break;
      case Undo::kFinish:
        eng->finish_time_[u.a] = -1.0;
        break;
    }
  }

  void rollback_from(const Entry& cut) {
    std::int64_t undone = 0;
    while (!done.empty() && !entry_before(done.back().entry, cut)) {
      Done d = std::move(done.back());
      done.pop_back();
      for (auto it = d.undo.rbegin(); it != d.undo.rend(); ++it) {
        undo_one(*it);
      }
      states.restore(d.node, d.save);
      states.drop(d.save);
      slot_state[d.entry.slot] = kPendingSlot;
      pending.push(d.entry);
      d.undo.clear();
      undo_pool.push_back(std::move(d.undo));
      ++undone;
    }
    if (undone > 0) {
      ++rollback_count;
      rolled_back += undone;
    }
  }

  // -- round phases (called from pool workers, one worker per shard) -------

  void start() {
    now = 0;
    cur_is_start = true;
    recording = false;
    for (NodeId v : owned) {
      if (eng->faults_ != nullptr && eng->faults_->crashed(v, 0.0)) continue;
      cur_node = v;
      cur_lineage = nullptr;
      sends_in_handler = 0;
      Context ctx = make_context(v);
      eng->processes_.at(v).on_start(ctx);
    }
    cur_is_start = false;
    flush_out();
  }

  /// Coalesced mailbox flush (same buffer recycling as ShardEngine).
  /// Returns the minimum event time over everything flushed — positives
  /// by arrival, anti-messages by their target's time — which is this
  /// shard's in-flight contribution to the round's GVT candidate.
  double flush_out() {
    double sent_min = kInf;
    for (int b = 0; b < eng->part_.shards; ++b) {
      if (b == id) continue;
      Batch& box = outbox[static_cast<std::size_t>(b)];
      if (box.empty()) continue;
      for (const TwCross& c : box) sent_min = std::min(sent_min, c.t);
      eng->channel(id, b).push(std::move(box));
      Batch next;
      eng->return_channel(b, id).pop(next);
      next.clear();
      box = std::move(next);
    }
    return sent_min;
  }

  void drain_in() {
    for (int a = 0; a < eng->part_.shards; ++a) {
      if (a == id) continue;
      eng->channel(a, id).drain([this, a](Batch&& batch) {
        for (TwCross& cm : batch) {
          if (cm.anti) {
            handle_anti(cm);
          } else {
            handle_positive(std::move(cm));
          }
        }
        batch.clear();
        eng->return_channel(id, a).push(std::move(batch));
      });
    }
  }

  void handle_positive(TwCross&& cm) {
    Entry en{cm.t, cm.parent, cm.send_index, 0};
    // Straggler: the message lands before something already executed.
    // Roll the suffix back first so the pending queue only ever holds
    // events after every processed one.
    if (!done.empty() && entry_before(en, done.back().entry)) {
      rollback_from(en);
    }
    const std::uint32_t slot = alloc_slot(std::move(cm.msg));
    en.slot = slot;
    slot_state[slot] = kPendingSlot;
    slot_entry[slot] = en;
    slot_uid[slot] = cm.uid;
    by_uid.emplace(cm.uid, slot);
    pending.push(en);
  }

  void handle_anti(const TwCross& cm) {
    // FIFO SPSC channels: the positive always precedes its anti, so the
    // lookup cannot miss.
    const auto it = by_uid.find(cm.uid);
    require(it != by_uid.end(), "anti-message arrived before its positive");
    const std::uint32_t slot = it->second;
    if (slot_state[slot] == kProcessedSlot) {
      // Executed already: roll back through it (inclusive), which
      // re-enqueues it pending — then annihilate in place.
      rollback_from(slot_entry[slot]);
    }
    require(slot_state[slot] == kPendingSlot,
            "annihilation target in an impossible state");
    slot_state[slot] = kDeadSlot;
    slot_uid[slot] = 0;
    by_uid.erase(cm.uid);
    ++annihilated;
  }

  /// Pops annihilated entries off the head of the pending queue and
  /// frees their slots. Keeps the published pending minimum live: a
  /// dead head would floor GVT with an event that will never execute.
  void scrub_dead() {
    while (!pending.empty() && slot_state[pending.top().slot] == kDeadSlot) {
      const Entry en = pending.pop();
      free_slot(en.slot);
    }
  }

  void deliver(const Entry& ev) {
    now = ev.t;
    ++spec_events;
    if (!done.empty()) {
      require(entry_before(done.back().entry, ev),
              "speculative delivery out of entry order");
    }
    // Copy, not move: the slot keeps the body for re-delivery if this
    // very delivery is later rolled back. Copy before the handler runs —
    // its sends may grow (and reallocate) the slot arena.
    Message msg = slots[ev.slot];
    const NodeId to =
        msg.edge == kNoEdge ? msg.from : eng->graph_->other(msg.edge, msg.from);
    cur_t = ev.t;
    cur_parent = ev.parent;
    cur_send_index = ev.send_index;
    cur_node = to;
    cur_slot = ev.slot;
    cur_lineage = nullptr;
    sends_in_handler = 0;
    cur_alg_msgs = cur_ctl_msgs = cur_rec_msgs = 0;
    cur_alg_cost = cur_ctl_cost = cur_rec_cost = 0;
    recording = true;
    const std::uint32_t save = states.save(to);
    Context ctx = make_context(to);
    try {
      eng->processes_.at(to).on_message(ctx, msg);
    } catch (...) {
      // Mis-speculation can run a handler on an impossible history and
      // trip a protocol invariant. Unwind the partial execution (the
      // journal covers side effects up to the throw; the snapshot
      // covers the state) and hold the error on the done record — see
      // Done::error for when it surfaces.
      recording = false;
      for (auto it = cur_undo.rbegin(); it != cur_undo.rend(); ++it) {
        undo_one(*it);
      }
      cur_undo.clear();
      states.restore(to, save);
      done.push_back(Done{ev, to, save, 0, 0, 0, 0, 0, 0,
                          msg.edge != kNoEdge, take_undo_vec(),
                          std::current_exception()});
      return;
    }
    recording = false;
    done.push_back(Done{ev, to, save, cur_alg_msgs, cur_ctl_msgs,
                        cur_rec_msgs, cur_alg_cost, cur_ctl_cost,
                        cur_rec_cost, msg.edge != kNoEdge,
                        std::move(cur_undo), nullptr});
    cur_undo = take_undo_vec();
  }

  std::vector<Undo> take_undo_vec() {
    if (undo_pool.empty()) return {};
    std::vector<Undo> v = std::move(undo_pool.back());
    undo_pool.pop_back();
    return v;
  }

  /// Executes up to `budget` pending events in entry order. Annihilated
  /// entries reached along the way are scrubbed for free.
  void speculate(int budget) {
    while (budget != 0) {
      scrub_dead();
      if (pending.empty()) break;
      const Entry ev = pending.pop();
      slot_state[ev.slot] = kProcessedSlot;
      deliver(ev);
      --budget;
    }
  }

  TimeWarpEngine* eng;
  int id;
  std::vector<NodeId> owned;  // ascending node ids
  double now = 0;

  TieredCalQueue<Entry, EntryTime, EntryAfter> pending;
  std::deque<Done> done;  // processed, uncommitted; entry order
  std::vector<Message> slots;
  std::vector<Entry> slot_entry;
  std::vector<std::uint8_t> slot_state;
  std::vector<std::uint64_t> slot_uid;  // 0 = local (no uid)
  std::vector<const Lineage*> slot_lineage;  // record published by slot's handler
  std::vector<std::uint32_t> free_slots;
  std::unordered_map<std::uint64_t, std::uint32_t> by_uid;
  std::deque<Lineage> arena;  // pointer-stable lineage records
  std::vector<Batch> outbox;  // per-destination mailboxes (k entries)
  SavedStates states;
  std::vector<std::vector<Undo>> undo_pool;  // recycled journal buffers
  std::vector<Undo> cur_undo;
  std::uint64_t uid_counter = 0;

  // Current handler identity (for lazy lineage creation) and its
  // accumulating ledger deltas.
  double cur_t = 0;
  const Lineage* cur_parent = nullptr;
  std::uint32_t cur_send_index = 0;
  NodeId cur_node = kNoNode;
  std::uint32_t cur_slot = 0;
  bool cur_is_start = false;
  const Lineage* cur_lineage = nullptr;
  std::uint32_t sends_in_handler = 0;
  bool recording = false;
  std::int64_t cur_alg_msgs = 0;
  std::int64_t cur_ctl_msgs = 0;
  std::int64_t cur_rec_msgs = 0;
  Weight cur_alg_cost = 0;
  Weight cur_ctl_cost = 0;
  Weight cur_rec_cost = 0;

  RunStats start_stats;  // on_start sends: committed immediately

  // Per-shard counters, summed serially each GVT round.
  std::int64_t spec_events = 0;
  std::int64_t rollback_count = 0;
  std::int64_t rolled_back = 0;
  std::int64_t anti_sent = 0;
  std::int64_t annihilated = 0;
};

// ---------------------------------------------------------------------------
// TimeWarpEngine
// ---------------------------------------------------------------------------

TimeWarpEngine::TimeWarpEngine(const Graph& g, const ProcessFactory& factory,
                               std::unique_ptr<DelayModel> delay,
                               std::uint64_t seed, Options opt)
    : TimeWarpEngine(g, ProcessStore::from_factory(g.node_count(), factory),
                     std::move(delay), seed, opt) {}

TimeWarpEngine::TimeWarpEngine(const Graph& g, ProcessStore store,
                               std::unique_ptr<DelayModel> delay,
                               std::uint64_t seed, Options opt)
    : graph_(&g),
      processes_(std::move(store)),
      delay_(std::move(delay)),
      seed_(seed),
      part_(partition_shards(g, opt.shards, opt.partition)),
      quantum_(opt.quantum),
      last_arrival_(static_cast<std::size_t>(2 * g.edge_count()), 0.0),
      channel_sends_(static_cast<std::size_t>(2 * g.edge_count()), 0),
      channel_messages_{
          std::vector<std::int64_t>(static_cast<std::size_t>(2 * g.edge_count()),
                                    0),
          std::vector<std::int64_t>(static_cast<std::size_t>(2 * g.edge_count()),
                                    0),
          std::vector<std::int64_t>(static_cast<std::size_t>(2 * g.edge_count()),
                                    0)},
      finish_time_(static_cast<std::size_t>(g.node_count()), -1.0) {
  require(delay_ != nullptr, "delay model must not be null");
  require(opt.threads >= 0, "thread count must be >= 0");
  require(opt.quantum >= 1, "speculation quantum must be >= 1");
  require(processes_.size() == g.node_count(),
          "process store size must match the node count");

  const int k = part_.shards;
  shards_.reserve(static_cast<std::size_t>(k));
  for (int s = 0; s < k; ++s) {
    // csca-analyze: allow(SCALE-1): k per-shard bodies, not per-node
    shards_.push_back(std::make_unique<Shard>(this, s));
    shards_.back()->outbox.resize(static_cast<std::size_t>(k));
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    shards_[static_cast<std::size_t>(part_.shard(v))]->owned.push_back(v);
  }
  channels_.resize(static_cast<std::size_t>(k) * static_cast<std::size_t>(k));
  returns_.resize(static_cast<std::size_t>(k) * static_cast<std::size_t>(k));
  for (int a = 0; a < k; ++a) {
    for (int b = 0; b < k; ++b) {
      if (a == b) continue;
      const auto idx = static_cast<std::size_t>(a * k + b);
      // csca-analyze: allow(SCALE-1): k^2 channel endpoints, not per-node
      channels_[idx] = std::make_unique<SpscChannel<Batch>>();
      // csca-analyze: allow(SCALE-1): k^2 return channels, not per-node
      returns_[idx] = std::make_unique<SpscChannel<Batch>>();
    }
  }

  pending_min_.assign(static_cast<std::size_t>(k), kInf);
  in_flight_min_.assign(static_cast<std::size_t>(k), kInf);
  budget_.assign(static_cast<std::size_t>(k), quantum_);
  const int threads = opt.threads > 0 ? std::min(opt.threads, k) : k;
  pool_ = std::make_unique<RunPool>(threads);
}

TimeWarpEngine::TimeWarpEngine(const Graph& g, const ProcessFactory& factory,
                               std::unique_ptr<DelayModel> delay,
                               std::uint64_t seed)
    : TimeWarpEngine(g, factory, std::move(delay), seed, Options{}) {}

TimeWarpEngine::~TimeWarpEngine() = default;

void TimeWarpEngine::set_faults(const FaultInjector* f) {
  require(!ran_, "faults must be attached before run()");
  faults_ = (f != nullptr && f->active()) ? f : nullptr;
  if (faults_ != nullptr) faults_->plan().validate(*graph_);
}

RunStats TimeWarpEngine::run() {
  require(!ran_, "TimeWarpEngine::run is single-shot");
  ran_ = true;
  const auto ks = static_cast<std::size_t>(part_.shards);

  pool_->run_indexed(ks, [this](std::size_t s) { shards_[s]->start(); });
  for (const auto& sh : shards_) {
    stats_.algorithm_messages += sh->start_stats.algorithm_messages;
    stats_.control_messages += sh->start_stats.control_messages;
    stats_.recovery_messages += sh->start_stats.recovery_messages;
    stats_.algorithm_cost += sh->start_stats.algorithm_cost;
    stats_.control_cost += sh->start_stats.control_cost;
    stats_.recovery_cost += sh->start_stats.recovery_cost;
  }

  for (;;) {
    ++rounds_;
    for (int s = 0; s < part_.shards; ++s) {
      int b = quantum_;
      if (pace_hook_) {
        const int p = pace_hook_(s, rounds_);
        if (p >= 0) b = p;
      }
      budget_[static_cast<std::size_t>(s)] = b;
    }
    pool_->run_indexed(ks, [this](std::size_t s) {
      Shard& sh = *shards_[s];
      sh.drain_in();
      sh.speculate(budget_[s]);
      in_flight_min_[s] = sh.flush_out();
      sh.scrub_dead();
      pending_min_[s] = sh.pending.min_time();
    });
    if (!gvt_round()) break;
  }
  return stats_;
}

void TimeWarpEngine::commit_shard(Shard& sh, double bound, double& max_freed) {
  while (!sh.done.empty() && sh.done.front().entry.t < bound) {
    Shard::Done& d = sh.done.front();
    if (d.error != nullptr) {
      // The event survived to commit, so every event before it is
      // committed and its history equals the sequential run's: the
      // handler's throw is genuine, not a mis-speculation artifact.
      std::rethrow_exception(d.error);
    }
    stats_.algorithm_messages += d.alg_msgs;
    stats_.control_messages += d.ctl_msgs;
    stats_.recovery_messages += d.rec_msgs;
    stats_.algorithm_cost += d.alg_cost;
    stats_.control_cost += d.ctl_cost;
    stats_.recovery_cost += d.rec_cost;
    ++stats_.events;
    if (d.is_edge) {
      stats_.completion_time = std::max(stats_.completion_time, d.entry.t);
    }
    if (commit_hook_) {
      commit_hook_(CommittedEvent{d.entry.t, d.node, d.is_edge});
    }
    sh.states.drop(d.save);
    max_freed = std::max(max_freed, d.entry.t);
    sh.free_slot(d.entry.slot);
    d.undo.clear();
    sh.undo_pool.push_back(std::move(d.undo));
    sh.done.pop_front();
  }
}

bool TimeWarpEngine::gvt_round() {
  double min_pending = kInf;
  double min_flight = kInf;
  for (std::size_t s = 0; s < pending_min_.size(); ++s) {
    min_pending = std::min(min_pending, pending_min_[s]);
    min_flight = std::min(min_flight, in_flight_min_[s]);
  }
  const double cand = std::min(min_pending, min_flight);
  // GVT is monotone: everything pending or in flight descends from
  // processing events at or above the previous GVT, and handlers only
  // generate arrivals at or after their own time.
  require(cand >= gvt_, "GVT regressed");
  gvt_ = cand;

  rollbacks_ = 0;
  rolled_back_events_ = 0;
  anti_messages_ = 0;
  annihilations_ = 0;
  speculative_events_ = 0;
  for (const auto& sh : shards_) {
    rollbacks_ += sh->rollback_count;
    rolled_back_events_ += sh->rolled_back;
    anti_messages_ += sh->anti_sent;
    annihilations_ += sh->annihilated;
    speculative_events_ += sh->spec_events;
  }

  double max_freed = -kInf;
  for (auto& sh : shards_) commit_shard(*sh, gvt_, max_freed);

  const bool finished = cand == kInf;
  if (finished) {
    for (const auto& sh : shards_) {
      require(sh->done.empty() && sh->pending.empty(),
              "terminated with uncommitted events");
      require(sh->by_uid.empty(),
              "terminated with unannihilated positives");
    }
  }
  if (gvt_hook_) {
    gvt_hook_(GvtSample{rounds_, gvt_, min_pending, min_flight, stats_.events,
                        max_freed});
  }
  return !finished;
}

bool TimeWarpEngine::all_finished() const {
  return std::all_of(finish_time_.begin(), finish_time_.end(),
                     [](double t) { return t >= 0; });
}

double TimeWarpEngine::last_finish_time() const {
  require(all_finished(), "not all nodes have finished");
  return *std::max_element(finish_time_.begin(), finish_time_.end());
}

std::int64_t TimeWarpEngine::edge_message_count(EdgeId e) const {
  const auto c = static_cast<std::size_t>(2 * e);
  return channel_messages_[0][c] + channel_messages_[0][c + 1] +
         channel_messages_[1][c] + channel_messages_[1][c + 1] +
         channel_messages_[2][c] + channel_messages_[2][c + 1];
}

std::int64_t TimeWarpEngine::edge_message_count(EdgeId e, MsgClass cls) const {
  const auto c = static_cast<std::size_t>(2 * e);
  const auto& counts = channel_messages_[class_index(cls)];
  return counts[c] + counts[c + 1];
}

std::int64_t TimeWarpEngine::max_edge_message_count() const {
  std::int64_t best = 0;
  for (EdgeId e = 0; e < graph_->edge_count(); ++e) {
    best = std::max(best, edge_message_count(e));
  }
  return best;
}

std::int64_t TimeWarpEngine::max_edge_message_count(MsgClass cls) const {
  std::int64_t best = 0;
  for (EdgeId e = 0; e < graph_->edge_count(); ++e) {
    best = std::max(best, edge_message_count(e, cls));
  }
  return best;
}

}  // namespace csca
