// Node partitioner for the sharded conservative engine.
//
// Grows k connected-ish regions by weighted-greedy BFS: each shard
// starts from the lowest-id unassigned node and repeatedly absorbs the
// frontier node with the largest total edge weight into the shard so
// far (ties broken by node id), until the shard reaches its target size
// ceil(n / k). Heavier edges are thus likelier to be shard-internal,
// which matters twice for the engine: internal traffic needs no
// cross-shard forwarding, and — because a heavy cross edge contributes
// w-scaled lookahead while a light one contributes little — keeping
// light edges out of the cut keeps the conservative safe windows wide.
//
// High-degree hubs get delegate treatment (the HavoqGT idea, adapted to
// the single-owner model the engine's bit-identity contract requires):
// star-like families would otherwise pack a hub *and* its ceil(n/k)
// nearest leaves into one shard, serializing most of the run. When a
// graph has hubs — degree far above the mean — they are assigned first,
// round-robin across shards in descending degree order, so hub-incident
// event load spreads over all workers; the greedy growth then fills the
// shards around them. Graphs without hubs (grids, paths, gnp) take the
// historical code path, bit for bit.
//
// src/partition/ (the paper's radius covers) solves a different
// problem: its clusters overlap by construction, and an event must have
// exactly one owner. Hence this small dedicated partitioner.
//
// Deterministic: a pure function of the graph (+ k + options). The
// parallel engine's reproducibility contract starts here.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace csca {

struct ShardPartition {
  int shards = 1;
  std::vector<int> shard_of;  ///< node -> shard id in [0, shards)
  /// Delegate hubs, descending degree (empty when none qualified).
  std::vector<NodeId> hubs;

  int shard(NodeId v) const {
    return shard_of[static_cast<std::size_t>(v)];
  }
  /// Nodes per shard.
  std::vector<int> sizes() const;
};

/// Hub detection knobs. A node is a delegate hub when its degree is at
/// least hub_factor times the mean degree AND at least hub_min_degree;
/// the absolute floor keeps every small/regular test graph on the
/// historical partition path.
struct PartitionOptions {
  int hub_factor = 8;
  int hub_min_degree = 64;
};

/// Partitions g's nodes into at most k non-empty shards (fewer only
/// when k > n). Requires k >= 1.
ShardPartition partition_shards(const Graph& g, int k);
ShardPartition partition_shards(const Graph& g, int k,
                                const PartitionOptions& opt);

}  // namespace csca
