// Node partitioner for the sharded conservative engine.
//
// Grows k connected-ish regions by weighted-greedy BFS: each shard
// starts from the lowest-id unassigned node and repeatedly absorbs the
// frontier node with the largest total edge weight into the shard so
// far (ties broken by node id), until the shard reaches its target size
// ceil(n / k). Heavier edges are thus likelier to be shard-internal,
// which matters twice for the engine: internal traffic needs no
// cross-shard forwarding, and — because a heavy cross edge contributes
// w-scaled lookahead while a light one contributes little — keeping
// light edges out of the cut keeps the conservative safe windows wide.
//
// src/partition/ (the paper's radius covers) solves a different
// problem: its clusters overlap by construction, and an event must have
// exactly one owner. Hence this small dedicated partitioner.
//
// Deterministic: a pure function of the graph (+ k). The parallel
// engine's reproducibility contract starts here.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace csca {

struct ShardPartition {
  int shards = 1;
  std::vector<int> shard_of;  ///< node -> shard id in [0, shards)

  int shard(NodeId v) const {
    return shard_of[static_cast<std::size_t>(v)];
  }
  /// Nodes per shard.
  std::vector<int> sizes() const;
};

/// Partitions g's nodes into at most k non-empty shards (fewer only
/// when k > n). Requires k >= 1.
ShardPartition partition_shards(const Graph& g, int k);

}  // namespace csca
