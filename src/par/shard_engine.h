// Sharded conservative parallel engine.
//
// Partitions the graph's nodes into k shards (par/partition.h), gives
// each shard its own event queue, clock, and worker, forwards
// cross-shard sends through per-destination mailboxes flushed over SPSC
// channels (par/spsc.h) at round barriers, and advances shards in
// conservative CMB-style rounds bounded by per-boundary-edge
// lookahead. Its contract is strict: **the execution is bit-identical
// to the sequential Network** — same per-node delivery sequences, same
// digests, same RunStats ledger — at every shard/thread count. Two
// mechanisms make that possible:
//
// 1. Keyed delay draws. Random delay models consume a per-run RNG
//    stream whose draw order a parallel engine cannot reproduce, so
//    this engine only draws through DelayModel::delay_keyed, keyed by
//    (run seed, directed channel, per-channel send count) — a pure
//    function of protocol behaviour, not of interleaving. A Network
//    with set_keyed_delays(true) is the sequential reference; for
//    deterministic models (ExactDelay, EdgeFractionDelay) keyed and
//    plain draws coincide, so the plain Network is directly comparable.
//
// 2. Genealogical tie-break. The Network orders same-time events by a
//    global send sequence number, which does not exist across shards.
//    But among *simultaneously pending* same-time events, that seq
//    order equals a causal (genealogical) order: compare the events'
//    parent handlers — recursively, by delivery time, then genealogy —
//    and within one handler by send index. Each delivered event gets an
//    immutable Lineage record; pending events carry a pointer to their
//    parent's record. The conservative rounds guarantee an event is
//    only popped when everything sequentially before it in its shard is
//    already delivered or provably later, so per-shard pop order equals
//    the sequential delivery order restricted to the shard — and every
//    per-node state evolution, FIFO clamp, and keyed draw matches the
//    sequential run exactly.
//
// Round structure (run()):
//   drain    each shard moves its in-channel messages into its heap and
//            publishes next_t = earliest pending time  (parallel)
//   bound    bound[s] = min over shards a of next_t[a] + L(a, s), where
//            L is the min-plus closure (shortest >= 1-edge path,
//            including cycles back into s) of the k x k matrix of
//            DelayModel::min_delay over boundary edges. The closure —
//            not the direct edge minimum — is essential: a message can
//            relay into s through a shard whose queue is momentarily
//            empty, and a shard's own sends can cycle back   (serial)
//   window   every shard delivers its events with t < bound[s]
//            (parallel); any message it receives later provably has
//            t >= bound[s], so the window is safe including ties
//   wave     if no shard has next_t < bound (zero-lookahead cycles at
//            one timestamp T), shards at T deliver exactly their
//            currently-pending events at T — a causal generation.
//            Children land at T with strictly later genealogy, so
//            generation-by-generation delivery refines the sequential
//            same-time order. Guarantees progress every round.
//
// Cross-shard traffic is coalesced: a send to another shard appends to
// the sender's per-destination mailbox (a plain vector), and each
// parallel phase flushes every non-empty mailbox as one SPSC push at
// its end — one channel allocation per (sender, dest, phase) instead of
// one per message. Consumed batch buffers return to their sender over a
// reverse SPSC channel, so steady state recycles buffers instead of
// allocating. Safe-time semantics are untouched: messages were only
// ever observed at the post-phase drain barrier, and batches preserve
// the per-channel push order, so delivery order — and with it the
// keyed-delay bit-identity contract — is byte-identical to per-message
// pushes.
//
// Shared state is written under strict ownership (per-channel counters
// by the channel's unique sender shard, per-node state by the owner
// shard), and rounds are separated by the RunPool barrier, so the
// engine is lock-free on the hot path and clean under TSan.
//
// Not supported (sequential-engine features that have no cross-shard
// meaning): InvariantObserver hooks, step()/budget slicing.
#pragma once

#include <array>
#include <limits>
#include <memory>
#include <vector>

#include "par/partition.h"
#include "par/run_pool.h"
#include "par/spsc.h"
#include "sim/delay.h"
#include "sim/engine.h"
#include "sim/process_store.h"
#include "util/rng.h"

namespace csca {

class FaultInjector;

class ShardEngine final : public ProcessHost {
 public:
  struct Options {
    int shards = 1;
    int threads = 0;  ///< pool workers; 0 means one per shard
    /// Hub/delegate handling for the node partition (par/partition.h).
    PartitionOptions partition;
  };

  using ProcessStore = PooledStore<Process>;

  ShardEngine(const Graph& g, const ProcessFactory& factory,
              std::unique_ptr<DelayModel> delay, std::uint64_t seed,
              Options opt);
  ShardEngine(const Graph& g, const ProcessFactory& factory,
              std::unique_ptr<DelayModel> delay, std::uint64_t seed = 1);
  /// Hosts a pre-built (typically pooled) store of g.node_count()
  /// processes; no per-node allocation inside the engine.
  ShardEngine(const Graph& g, ProcessStore store,
              std::unique_ptr<DelayModel> delay, std::uint64_t seed,
              Options opt);
  ~ShardEngine() override;

  /// Runs the protocol to quiescence and returns the merged ledger.
  /// Single-shot: a ShardEngine instance runs once.
  RunStats run();

  /// Attaches a fault injector (nullptr detaches; not owned). Fault
  /// fates key off the same per-channel send counts as the keyed delay
  /// draws, so a faulted run stays bit-identical to the keyed Network
  /// at every shard count. Same contract as Network::set_faults:
  /// inactive injectors are discarded; must be called before run().
  void set_faults(const FaultInjector* f);

  int shard_count() const { return part_.shards; }
  const ShardPartition& partition() const { return part_; }
  /// Barrier rounds executed, and how many were zero-lookahead waves.
  std::int64_t rounds() const { return rounds_; }
  std::int64_t wave_rounds() const { return wave_rounds_; }

  // ProcessHost: post-run access, identical semantics to Network.
  const Graph& graph() const override { return *graph_; }
  const RunStats& stats() const override { return stats_; }
  Process& process(NodeId v) override {
    graph_->check_node(v);
    return processes_.at(v);
  }

  /// Bytes of pooled per-node protocol state (see docs/scale.md).
  std::size_t process_state_bytes() const {
    return processes_.state_bytes();
  }
  bool finished(NodeId v) const override {
    return finish_time_[static_cast<std::size_t>(v)] >= 0;
  }
  double finish_time(NodeId v) const override {
    return finish_time_[static_cast<std::size_t>(v)];
  }
  bool all_finished() const override;
  double last_finish_time() const override;
  std::int64_t edge_message_count(EdgeId e) const override;
  std::int64_t edge_message_count(EdgeId e, MsgClass cls) const override;
  std::int64_t max_edge_message_count() const override;
  std::int64_t max_edge_message_count(MsgClass cls) const override;

 private:
  friend struct ShardEngineTestPeer;

  /// Birth certificate of a delivered event (or an on_start marker):
  /// enough to compare two events' positions in the sequential delivery
  /// order without a global counter. Records are immutable once
  /// published and owned by the arena of the shard that delivered the
  /// event; cross-shard readers see them through the channel's
  /// release/acquire edge (and the round barrier).
  struct Lineage {
    double t = 0;             ///< delivery time; -1 for on_start markers
    const Lineage* parent = nullptr;  ///< null => on_start marker
    std::uint32_t send_index = 0;  ///< birth send's index in its handler
    NodeId origin = kNoNode;  ///< marker only: the node starting up
  };

  /// A message in flight between shards.
  struct CrossMsg {
    double t = 0;  ///< FIFO-clamped arrival time
    const Lineage* parent = nullptr;
    std::uint32_t send_index = 0;
    Message msg;
  };

  /// A coalesced mailbox flush: every cross-shard message one sender
  /// shard produced for one destination during one parallel phase, in
  /// channel push order.
  using Batch = std::vector<CrossMsg>;

  struct Shard;

  static constexpr double kInf = std::numeric_limits<double>::infinity();

  static std::size_t class_index(MsgClass cls) {
    return cls == MsgClass::kAlgorithm ? 0
           : cls == MsgClass::kControl ? 1
                                       : 2;
  }
  /// Forward channel: batches flowing from shard `from` to shard `to`
  /// (producer = from's worker, consumer = to's worker).
  SpscChannel<Batch>& channel(int from, int to) {
    return *channels_[static_cast<std::size_t>(from) *
                          static_cast<std::size_t>(part_.shards) +
                      static_cast<std::size_t>(to)];
  }
  /// Reverse channel recycling emptied batch buffers: producer = the
  /// shard that consumed the batch (`from`), consumer = the shard that
  /// will refill it (`to`). Same unique-producer/unique-consumer pairing
  /// as the forward channel, just mirrored.
  SpscChannel<Batch>& return_channel(int from, int to) {
    return *returns_[static_cast<std::size_t>(from) *
                         static_cast<std::size_t>(part_.shards) +
                     static_cast<std::size_t>(to)];
  }

  const Graph* graph_;
  ProcessStore processes_;
  std::unique_ptr<DelayModel> delay_;
  std::uint64_t seed_;
  ShardPartition part_;

  // Sender-owned per-directed-channel state (2 * edge + direction): the
  // unique sender node of a channel lives in exactly one shard, so
  // these vectors are written race-free without locks.
  std::vector<double> last_arrival_;
  std::vector<std::uint64_t> channel_sends_;
  std::array<std::vector<std::int64_t>, kMsgClassCount> channel_messages_;

  // Owner-shard-written per-node state.
  std::vector<double> finish_time_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<SpscChannel<Batch>>> channels_;
  std::vector<std::unique_ptr<SpscChannel<Batch>>> returns_;
  std::vector<double> cross_min_;  // k x k lookahead closure (see above)
  std::vector<double> next_t_;
  std::vector<double> bound_;
  std::unique_ptr<RunPool> pool_;

  RunStats stats_;
  std::int64_t rounds_ = 0;
  std::int64_t wave_rounds_ = 0;
  bool ran_ = false;
  const FaultInjector* faults_ = nullptr;
};

}  // namespace csca
