#include "par/run_pool.h"

namespace csca {

RunPool::RunPool(int threads) {
  require(threads >= 1, "RunPool needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

RunPool::~RunPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void RunPool::submit(std::function<void()> job) {
  require(job != nullptr, "RunPool job must not be null");
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Compact the drained prefix occasionally so the queue does not
    // grow monotonically across a long sweep.
    if (queue_head_ > 64 && queue_head_ * 2 > queue_.size()) {
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(queue_head_));
      queue_head_ = 0;
    }
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void RunPool::wait_all() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] {
    return queue_head_ == queue_.size() && active_ == 0;
  });
}

void RunPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      return stop_ || queue_head_ < queue_.size();
    });
    if (queue_head_ == queue_.size()) {
      // stop_ set and no work left.
      return;
    }
    std::function<void()> job = std::move(queue_[queue_head_]);
    ++queue_head_;
    ++active_;
    lock.unlock();
    job();
    lock.lock();
    --active_;
    if (queue_head_ == queue_.size() && active_ == 0) {
      done_cv_.notify_all();
    }
  }
}

}  // namespace csca
