// Calendar queue for the optimistic engine's far event horizon.
//
// A Time Warp shard's pending set is wide: speculation runs far ahead
// of GVT, so the queue holds events spread over a long time range, and
// a single binary heap pays O(log n) per operation on all of them. The
// classic calendar queue (Brown '88; the ROOT-Sim lineage named in
// ROADMAP item 1) buckets events by time "day" within a ring of
// buckets ("year" = one lap of the ring), making enqueue O(1) and
// dequeue amortized O(1) under stable event populations.
//
// This file composes two pieces:
//
//   * CalQueue — the raw ring. push files an item under
//     floor(t / width); drain_min_bucket extracts the earliest
//     non-empty day in one batch (items unsorted within the batch).
//     min_time is that day's floor: a *lower bound* on the true
//     minimum, which is exactly what GVT needs (candidates may only
//     under-approximate). Bucket count doubles when the population
//     outgrows the ring.
//   * TieredCalQueue — near/far split. Items below the near horizon
//     live in a binary heap ordered by the engine's full comparator
//     (time + genealogy); items at or beyond it sit unsorted in the
//     calendar. When the heap drains, the earliest calendar day
//     migrates into the heap and the horizon advances to that day's
//     upper edge. Rollback re-insertions below the horizon go straight
//     to the heap, so pop order is total and exact while the far
//     majority of pending events stays out of every heap sift.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/require.h"

namespace csca {

/// TimeOf: functor mapping an item to its double timestamp (>= 0).
template <typename Item, typename TimeOf>
class CalQueue {
 public:
  explicit CalQueue(double width = 1.0, std::size_t buckets = 8)
      : width_(width), ring_(std::max<std::size_t>(buckets, 1)) {
    require(width > 0.0, "calendar bucket width must be positive");
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(Item item) {
    const std::int64_t day = day_of(TimeOf{}(item));
    if (size_ == 0 || day < min_day_) min_day_ = day;
    ring_[slot(day)].push_back(std::move(item));
    ++size_;
    if (size_ > kItemsPerBucket * ring_.size()) grow();
  }

  /// Lower bound on the earliest timestamp present (the floor of the
  /// earliest non-empty day). Requires a non-empty queue.
  double min_time() const {
    require(size_ > 0, "min_time of an empty calendar");
    return static_cast<double>(min_day_) * width_;
  }

  /// Exclusive upper edge of the earliest non-empty day.
  double min_day_end() const {
    require(size_ > 0, "min_day_end of an empty calendar");
    return static_cast<double>(min_day_ + 1) * width_;
  }

  /// Moves every item of the earliest non-empty day into `out`
  /// (appended, unsorted) and advances the internal minimum.
  void drain_min_bucket(std::vector<Item>& out) {
    require(size_ > 0, "drain of an empty calendar");
    std::vector<Item>& b = ring_[slot(min_day_)];
    // The bucket may mix days a whole year (or more) apart: keep the
    // later ones, hand over exactly the min day.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (day_of(TimeOf{}(b[i])) == min_day_) {
        out.push_back(std::move(b[i]));
        --size_;
      } else {
        b[kept++] = std::move(b[i]);
      }
    }
    require(kept < b.size(), "min bucket held no min-day item");
    b.resize(kept);
    if (size_ == 0) return;
    advance_min_day();
  }

 private:
  // Growth threshold: amortizes the rebuild while keeping buckets short.
  static constexpr std::size_t kItemsPerBucket = 8;

  std::int64_t day_of(double t) const {
    require(t >= 0.0 && t < std::numeric_limits<double>::infinity(),
            "calendar timestamps must be finite and non-negative");
    return static_cast<std::int64_t>(t / width_);
  }

  std::size_t slot(std::int64_t day) const {
    return static_cast<std::size_t>(day) % ring_.size();
  }

  /// Classic calendar scan: lap the ring looking for an item dated in
  /// each successive day; if a whole year passes empty, fall back to a
  /// direct minimum over everything (events jumped far ahead).
  void advance_min_day() {
    const std::int64_t lap_end =
        min_day_ + static_cast<std::int64_t>(ring_.size());
    for (std::int64_t day = min_day_ + 1; day <= lap_end; ++day) {
      for (const Item& it : ring_[slot(day)]) {
        if (day_of(TimeOf{}(it)) == day) {
          min_day_ = day;
          return;
        }
      }
    }
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (const std::vector<Item>& b : ring_) {
      for (const Item& it : b) best = std::min(best, day_of(TimeOf{}(it)));
    }
    min_day_ = best;
  }

  void grow() {
    std::vector<std::vector<Item>> old = std::move(ring_);
    ring_.assign(old.size() * 2, {});
    for (std::vector<Item>& b : old) {
      for (Item& it : b) {
        ring_[slot(day_of(TimeOf{}(it)))].push_back(std::move(it));
      }
    }
  }

  double width_;
  std::vector<std::vector<Item>> ring_;
  std::int64_t min_day_ = 0;
  std::size_t size_ = 0;
};

/// Near/far tiering. `After` is a std::push_heap-style comparator that
/// keeps the *first* item (in the engine's total order) on heap front —
/// the same shape ShardEngine::entry_after has.
template <typename Item, typename TimeOf, typename After>
class TieredCalQueue {
 public:
  explicit TieredCalQueue(double cal_width = 1.0)
      : cal_(cal_width) {}

  bool empty() const { return heap_.empty() && cal_.empty(); }
  std::size_t size() const { return heap_.size() + cal_.size(); }

  void push(Item item) {
    if (TimeOf{}(item) < horizon_) {
      heap_.push_back(std::move(item));
      std::push_heap(heap_.begin(), heap_.end(), After{});
    } else {
      cal_.push(std::move(item));
    }
  }

  /// First pending item in total order. Sound because every calendar
  /// item's time is >= horizon_ > every heap item's time.
  const Item& top() {
    refill();
    require(!heap_.empty(), "top of an empty queue");
    return heap_.front();
  }

  Item pop() {
    refill();
    require(!heap_.empty(), "pop of an empty queue");
    std::pop_heap(heap_.begin(), heap_.end(), After{});
    Item out = std::move(heap_.back());
    heap_.pop_back();
    return out;
  }

  /// Lower bound on the earliest pending time: exact when the heap is
  /// non-empty, the earliest calendar day's floor otherwise. GVT
  /// candidates built on this only under-approximate, which is safe.
  double min_time() const {
    if (!heap_.empty()) return TimeOf{}(heap_.front());
    if (!cal_.empty()) return cal_.min_time();
    return std::numeric_limits<double>::infinity();
  }

 private:
  void refill() {
    while (heap_.empty() && !cal_.empty()) {
      horizon_ = cal_.min_day_end();
      migrate_.clear();
      cal_.drain_min_bucket(migrate_);
      for (Item& it : migrate_) {
        heap_.push_back(std::move(it));
        std::push_heap(heap_.begin(), heap_.end(), After{});
      }
    }
  }

  CalQueue<Item, TimeOf> cal_;
  std::vector<Item> heap_;
  std::vector<Item> migrate_;  // reused drain scratch
  double horizon_ = 0.0;
};

}  // namespace csca
