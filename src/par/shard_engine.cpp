#include "par/shard_engine.h"

#include <algorithm>
#include <deque>

#include "fault/fault_injector.h"

namespace csca {

// ---------------------------------------------------------------------------
// Shard: one event loop. Owns a subset of nodes, their pending events,
// and the lineage records of everything it has delivered. Implements
// EngineBackend so protocol Contexts route sends straight here.
// ---------------------------------------------------------------------------

struct ShardEngine::Shard final : public EngineBackend {
  Shard(ShardEngine* engine, int shard_id) : eng(engine), id(shard_id) {}

  /// A pending event: arrival time, birth certificate (parent handler's
  /// lineage + send index within that handler), and the arena slot
  /// holding the message body.
  struct Entry {
    double t = 0;
    const Lineage* parent = nullptr;
    std::uint32_t send_index = 0;
    std::uint32_t slot = 0;
  };

  // -- ordering ------------------------------------------------------------

  /// Sequential-order comparison of two handlers by genealogy: earlier
  /// delivery time first; at equal times, recurse on the parents and
  /// fall back to the send index within a shared parent. on_start
  /// markers (t = -1, null parent) compare by node id, matching the
  /// sequential engine's ascending start order. Total order; the walk
  /// terminates because lineage chains are finite and (parent,
  /// send_index) is unique per record.
  static bool lineage_before(const Lineage* a, const Lineage* b) {
    while (true) {
      if (a == b) return false;
      if (a->t != b->t) return a->t < b->t;
      if (a->parent == nullptr || b->parent == nullptr) {
        // Markers carry t = -1 and deliveries t >= 0, so equal times
        // with a null parent on either side means both are markers.
        return a->origin < b->origin;
      }
      if (a->parent == b->parent) return a->send_index < b->send_index;
      a = a->parent;
      b = b->parent;
    }
  }

  /// Pending-event order: time, then birth order — the parent handlers'
  /// sequential order, then the send index for siblings. Equals the
  /// sequential engine's (t, seq) order restricted to events that are
  /// ever simultaneously pending.
  static bool entry_before(const Entry& x, const Entry& y) {
    if (x.t != y.t) return x.t < y.t;
    if (x.parent == y.parent) return x.send_index < y.send_index;
    return lineage_before(x.parent, y.parent);
  }

  /// Heap comparator: std:: heaps are max-heaps under their comparator,
  /// so invert to keep the sequentially-first entry on top.
  static bool entry_after(const Entry& x, const Entry& y) {
    return entry_before(y, x);
  }

  // -- event queue ---------------------------------------------------------

  void push_local(double t, const Lineage* parent, std::uint32_t send_index,
                  Message&& m) {
    std::uint32_t slot;
    if (!free_slots.empty()) {
      slot = free_slots.back();
      free_slots.pop_back();
      slots[slot] = std::move(m);
    } else {
      slot = static_cast<std::uint32_t>(slots.size());
      slots.push_back(std::move(m));
    }
    heap.push_back(Entry{t, parent, send_index, slot});
    std::push_heap(heap.begin(), heap.end(), entry_after);
  }

  Entry pop_top() {
    std::pop_heap(heap.begin(), heap.end(), entry_after);
    Entry top = heap.back();
    heap.pop_back();
    return top;
  }

  double next_time() const { return heap.empty() ? kInf : heap.front().t; }

  // -- lineage -------------------------------------------------------------

  /// Lazily publishes the current handler's lineage record: only
  /// handlers that send anything allocate one. The deque arena keeps
  /// records pointer-stable for the lifetime of the run; cross-shard
  /// readers reach them through the channel's release/acquire edge.
  const Lineage* handler_lineage() {
    if (cur_lineage == nullptr) {
      if (cur_is_start) {
        arena.push_back(Lineage{-1.0, nullptr, 0, cur_node});
      } else {
        arena.push_back(Lineage{now, cur_parent, cur_send_index, cur_node});
      }
      cur_lineage = &arena.back();
    }
    return cur_lineage;
  }

  // -- EngineBackend -------------------------------------------------------

  double engine_now() const override { return now; }
  const Graph& engine_graph() const override { return *eng->graph_; }

  void engine_send(NodeId from, EdgeId e, Message m, MsgClass cls) override {
    const Graph& g = *eng->graph_;
    const Edge& edge = g.edge(e);
    require(edge.u == from || edge.v == from,
            "process may only send on its own incident edges");
    // Same directed-channel FIFO clamp as the sequential engine. The
    // channel's unique sender node lives in exactly this shard, so the
    // per-channel counters are written race-free.
    const std::size_t channel =
        static_cast<std::size_t>(2 * e) + (from == edge.u ? 0 : 1);
    if (eng->faults_ != nullptr) {
      engine_send_faulty(from, e, edge, channel, std::move(m), cls);
      return;
    }
    const double d = eng->delay_->delay_keyed(
        e, edge.w,
        channel_delay_key(eng->seed_, channel, eng->channel_sends_[channel]++));
    require(d >= 0.0 && d <= static_cast<double>(edge.w),
            "delay model produced delay outside [0, w(e)]");
    // The conservative windows are sound only if every actual draw
    // respects the model's declared lookahead floor.
    require(d >= eng->delay_->min_delay(e, edge.w),
            "delay model drew below its declared min_delay");
    const double arrival = std::max(now + d, eng->last_arrival_[channel]);
    eng->last_arrival_[channel] = arrival;

    m.from = from;
    m.edge = e;
    ++eng->channel_messages_[class_index(cls)][channel];
    if (cls == MsgClass::kAlgorithm) {
      ++stats.algorithm_messages;
      stats.algorithm_cost += edge.w;
    } else if (cls == MsgClass::kControl) {
      ++stats.control_messages;
      stats.control_cost += edge.w;
    } else {
      ++stats.recovery_messages;
      stats.recovery_cost += edge.w;
    }

    const Lineage* lin = handler_lineage();
    require(sends_in_handler != UINT32_MAX, "send index space exhausted");
    const std::uint32_t idx = sends_in_handler++;
    const NodeId to = g.other(e, from);
    const int dest = eng->part_.shard(to);
    if (dest == id) {
      push_local(arrival, lin, idx, std::move(m));
    } else {
      outbox[static_cast<std::size_t>(dest)].push_back(
          CrossMsg{arrival, lin, idx, std::move(m)});
    }
  }

  /// Mirror of Network::engine_send_faulty, drawing the identical keyed
  /// fate for the identical logical send: the per-channel count is
  /// consumed exactly when the sequential engine consumes it, dropped
  /// sends consume no send index, and a surviving duplicate consumes
  /// the next one — so delivery order stays bit-identical to the keyed
  /// Network at every shard count.
  void engine_send_faulty(NodeId from, EdgeId e, const Edge& edge,
                          std::size_t channel, Message m, MsgClass cls) {
    const FaultInjector& faults = *eng->faults_;
    if (faults.crashed(from, now)) return;
    const std::uint64_t count = eng->channel_sends_[channel]++;
    const auto charge = [&] {
      ++eng->channel_messages_[class_index(cls)][channel];
      if (cls == MsgClass::kAlgorithm) {
        ++stats.algorithm_messages;
        stats.algorithm_cost += edge.w;
      } else if (cls == MsgClass::kControl) {
        ++stats.control_messages;
        stats.control_cost += edge.w;
      } else {
        ++stats.recovery_messages;
        stats.recovery_cost += edge.w;
      }
    };
    const FaultInjector::SendFate fate = faults.send_fate(channel, count);
    if (fate.drop || faults.link_down(e, now)) {
      charge();
      return;
    }
    const double d = eng->delay_->delay_keyed(
        e, edge.w, channel_delay_key(eng->seed_, channel, count));
    require(d >= 0.0 && d <= static_cast<double>(edge.w),
            "delay model produced delay outside [0, w(e)]");
    require(d >= eng->delay_->min_delay(e, edge.w),
            "delay model drew below its declared min_delay");
    const double arrival = std::max(now + d, eng->last_arrival_[channel]);
    const NodeId to = eng->graph_->other(e, from);
    if (faults.link_down(e, arrival) || faults.crashed(to, arrival)) {
      charge();
      return;
    }
    eng->last_arrival_[channel] = arrival;
    m.from = from;
    m.edge = e;
    // Keyed corruption, identical to the sequential engine's: a pure
    // function of (seed, salt, channel, count), so the delivered bytes
    // match at every shard count.
    if (fate.garble) faults.garble(channel, count, m);
    // Byzantine sender corruption, before the duplicate splits off —
    // same order as Network::engine_send_faulty.
    if (faults.byzantine(from)) {
      const auto byz = faults.byzantine_fate(channel, count);
      if (byz == FaultInjector::ByzantineFate::kEquivocate) {
        faults.equivocate(channel, count, m);
      } else if (byz == FaultInjector::ByzantineFate::kForge) {
        faults.forge(channel, count, m);
      }
    }
    Message dup;
    if (fate.duplicate) dup = m;
    charge();
    const Lineage* lin = handler_lineage();
    require(sends_in_handler != UINT32_MAX, "send index space exhausted");
    const std::uint32_t idx = sends_in_handler++;
    const int dest = eng->part_.shard(to);
    if (dest == id) {
      push_local(arrival, lin, idx, std::move(m));
    } else {
      outbox[static_cast<std::size_t>(dest)].push_back(
          CrossMsg{arrival, lin, idx, std::move(m)});
    }
    if (fate.duplicate) {
      const double d2 = eng->delay_->delay_keyed(
          e, edge.w, faults.dup_delay_key(channel, count));
      require(d2 >= 0.0 && d2 <= static_cast<double>(edge.w),
              "delay model produced delay outside [0, w(e)]");
      require(d2 >= eng->delay_->min_delay(e, edge.w),
              "delay model drew below its declared min_delay");
      const double arr2 = std::max(now + d2, eng->last_arrival_[channel]);
      if (!faults.link_down(e, arr2) && !faults.crashed(to, arr2)) {
        require(sends_in_handler != UINT32_MAX, "send index space exhausted");
        const std::uint32_t idx2 = sends_in_handler++;
        if (dest == id) {
          push_local(arr2, lin, idx2, std::move(dup));
        } else {
          outbox[static_cast<std::size_t>(dest)].push_back(
              CrossMsg{arr2, lin, idx2, std::move(dup)});
        }
      }
    }
  }

  void engine_schedule_self(NodeId v, double delay, Message m) override {
    require(delay >= 0.0, "self-delivery delay must be non-negative");
    // A timer that would fire at or after its owner's crash dies with
    // the node (cf. Network::engine_schedule_self).
    if (eng->faults_ != nullptr && eng->faults_->crashed(v, now + delay))
      return;
    m.from = v;
    m.edge = kNoEdge;
    const Lineage* lin = handler_lineage();
    require(sends_in_handler != UINT32_MAX, "send index space exhausted");
    const std::uint32_t idx = sends_in_handler++;
    // v is the node currently executing here, so its shard is this one.
    push_local(now + delay, lin, idx, std::move(m));
  }

  void engine_finish(NodeId v) override {
    double& t = eng->finish_time_[static_cast<std::size_t>(v)];
    if (t < 0) t = now;
  }

  // -- round phases (called from pool workers, one worker per shard) -------

  void start() {
    now = 0;
    cur_is_start = true;
    for (NodeId v : owned) {
      // A node crashed at time 0 never participates at all.
      if (eng->faults_ != nullptr && eng->faults_->crashed(v, 0.0)) continue;
      cur_node = v;
      cur_lineage = nullptr;
      sends_in_handler = 0;
      Context ctx = make_context(v);
      eng->processes_.at(v).on_start(ctx);
    }
    cur_is_start = false;
    flush_out();
  }

  /// Coalesced mailbox flush, run at the end of every phase that
  /// executes handlers: each non-empty per-destination mailbox travels
  /// as one SPSC push, and the next buffer is recycled from the reverse
  /// channel when the destination has returned one (steady state
  /// allocates nothing per phase, let alone per message).
  void flush_out() {
    for (int b = 0; b < eng->part_.shards; ++b) {
      if (b == id) continue;
      Batch& box = outbox[static_cast<std::size_t>(b)];
      if (box.empty()) continue;
      eng->channel(id, b).push(std::move(box));
      Batch next;
      eng->return_channel(b, id).pop(next);
      next.clear();
      box = std::move(next);
    }
  }

  void drain_in() {
    for (int a = 0; a < eng->part_.shards; ++a) {
      if (a == id) continue;
      eng->channel(a, id).drain([this, a](Batch&& batch) {
        for (CrossMsg& cm : batch) {
          push_local(cm.t, cm.parent, cm.send_index, std::move(cm.msg));
        }
        batch.clear();
        // Hand the emptied buffer back to its producer for reuse.
        eng->return_channel(id, a).push(std::move(batch));
      });
    }
  }

  void deliver(const Entry& ev) {
    now = ev.t;
    Message msg = std::move(slots[ev.slot]);
    free_slots.push_back(ev.slot);
    const NodeId to =
        msg.edge == kNoEdge ? msg.from : eng->graph_->other(msg.edge, msg.from);
    // Mirrors the sequential ledger: only edge deliveries advance the
    // paper's time measure. Merged across shards as a max.
    if (msg.edge != kNoEdge) stats.completion_time = now;
    ++stats.events;
    cur_t = ev.t;
    cur_parent = ev.parent;
    cur_send_index = ev.send_index;
    cur_node = to;
    cur_lineage = nullptr;
    sends_in_handler = 0;
    Context ctx = make_context(to);
    eng->processes_.at(to).on_message(ctx, msg);
  }

  /// Normal round: deliver everything strictly before the safe bound.
  /// Locally generated events that land inside the window join the heap
  /// and are delivered in comparator order within the same call.
  void run_window(double bound) {
    while (!heap.empty() && heap.front().t < bound) deliver(pop_top());
    flush_out();
  }

  /// Zero-lookahead round: snapshot the currently-pending events at
  /// exactly t (one causal generation, already in sequential order via
  /// successive pops), then run their handlers. Children spawned at the
  /// same t re-enter the heap and wait for the next wave — they are
  /// genealogically later than everything in this snapshot.
  void run_wave(double t) {
    wave.clear();
    while (!heap.empty() && heap.front().t == t) wave.push_back(pop_top());
    for (const Entry& ev : wave) deliver(ev);
    flush_out();
  }

  ShardEngine* eng;
  int id;
  std::vector<NodeId> owned;  // ascending node ids
  double now = 0;

  std::vector<Entry> heap;
  std::vector<Message> slots;
  std::vector<std::uint32_t> free_slots;
  std::deque<Lineage> arena;  // pointer-stable lineage records
  std::vector<Entry> wave;    // scratch for run_wave
  std::vector<Batch> outbox;  // per-destination mailboxes (k entries)

  // Current handler identity (for lazy lineage creation).
  double cur_t = 0;
  const Lineage* cur_parent = nullptr;
  std::uint32_t cur_send_index = 0;
  NodeId cur_node = kNoNode;
  bool cur_is_start = false;
  const Lineage* cur_lineage = nullptr;
  std::uint32_t sends_in_handler = 0;

  RunStats stats;
};

// ---------------------------------------------------------------------------
// ShardEngine
// ---------------------------------------------------------------------------

ShardEngine::ShardEngine(const Graph& g, const ProcessFactory& factory,
                         std::unique_ptr<DelayModel> delay, std::uint64_t seed,
                         Options opt)
    : ShardEngine(g, ProcessStore::from_factory(g.node_count(), factory),
                  std::move(delay), seed, opt) {}

ShardEngine::ShardEngine(const Graph& g, ProcessStore store,
                         std::unique_ptr<DelayModel> delay, std::uint64_t seed,
                         Options opt)
    : graph_(&g),
      processes_(std::move(store)),
      delay_(std::move(delay)),
      seed_(seed),
      part_(partition_shards(g, opt.shards, opt.partition)),
      last_arrival_(static_cast<std::size_t>(2 * g.edge_count()), 0.0),
      channel_sends_(static_cast<std::size_t>(2 * g.edge_count()), 0),
      channel_messages_{
          std::vector<std::int64_t>(static_cast<std::size_t>(2 * g.edge_count()),
                                    0),
          std::vector<std::int64_t>(static_cast<std::size_t>(2 * g.edge_count()),
                                    0),
          std::vector<std::int64_t>(static_cast<std::size_t>(2 * g.edge_count()),
                                    0)},
      finish_time_(static_cast<std::size_t>(g.node_count()), -1.0) {
  require(delay_ != nullptr, "delay model must not be null");
  require(opt.threads >= 0, "thread count must be >= 0");
  require(processes_.size() == g.node_count(),
          "process store size must match the node count");

  const int k = part_.shards;
  shards_.reserve(static_cast<std::size_t>(k));
  for (int s = 0; s < k; ++s) {
    // csca-analyze: allow(SCALE-1): k per-shard bodies, not per-node
    shards_.push_back(std::make_unique<Shard>(this, s));
    shards_.back()->outbox.resize(static_cast<std::size_t>(k));
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    shards_[static_cast<std::size_t>(part_.shard(v))]->owned.push_back(v);
  }
  channels_.resize(static_cast<std::size_t>(k) * static_cast<std::size_t>(k));
  returns_.resize(static_cast<std::size_t>(k) * static_cast<std::size_t>(k));
  for (int a = 0; a < k; ++a) {
    for (int b = 0; b < k; ++b) {
      if (a == b) continue;
      const auto idx = static_cast<std::size_t>(a * k + b);
      // csca-analyze: allow(SCALE-1): k^2 channel endpoints, not per-node
      channels_[idx] = std::make_unique<SpscChannel<Batch>>();
      // csca-analyze: allow(SCALE-1): k^2 return channels, not per-node
      returns_[idx] = std::make_unique<SpscChannel<Batch>>();
    }
  }

  // Lookahead closure. Direct entries are the minimum declared delay
  // over boundary edges; the Floyd-Warshall pass (diagonal seeded to
  // infinity) extends them to shortest >= 1-edge paths, including
  // cycles back into the same shard. The closure is what makes the
  // per-round bounds sound against multi-hop relays: a message may
  // reach s through a shard whose queue is currently empty, and cycles
  // bound how far a shard may run ahead of its own feedback.
  cross_min_.assign(static_cast<std::size_t>(k) * static_cast<std::size_t>(k),
                    kInf);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    const int a = part_.shard(edge.u);
    const int b = part_.shard(edge.v);
    if (a == b) continue;
    const double d = delay_->min_delay(e, edge.w);
    require(d >= 0.0, "min_delay must be non-negative");
    double& ab = cross_min_[static_cast<std::size_t>(a * k + b)];
    double& ba = cross_min_[static_cast<std::size_t>(b * k + a)];
    ab = std::min(ab, d);
    ba = std::min(ba, d);
  }
  for (int m = 0; m < k; ++m) {
    for (int a = 0; a < k; ++a) {
      for (int s = 0; s < k; ++s) {
        const double via = cross_min_[static_cast<std::size_t>(a * k + m)] +
                           cross_min_[static_cast<std::size_t>(m * k + s)];
        double& as = cross_min_[static_cast<std::size_t>(a * k + s)];
        as = std::min(as, via);
      }
    }
  }

  next_t_.assign(static_cast<std::size_t>(k), kInf);
  bound_.assign(static_cast<std::size_t>(k), kInf);
  const int threads = opt.threads > 0 ? std::min(opt.threads, k) : k;
  pool_ = std::make_unique<RunPool>(threads);
}

ShardEngine::ShardEngine(const Graph& g, const ProcessFactory& factory,
                         std::unique_ptr<DelayModel> delay, std::uint64_t seed)
    : ShardEngine(g, factory, std::move(delay), seed, Options{}) {}

ShardEngine::~ShardEngine() = default;

void ShardEngine::set_faults(const FaultInjector* f) {
  require(!ran_, "faults must be attached before run()");
  faults_ = (f != nullptr && f->active()) ? f : nullptr;
  if (faults_ != nullptr) faults_->plan().validate(*graph_);
}

RunStats ShardEngine::run() {
  require(!ran_, "ShardEngine::run is single-shot");
  ran_ = true;
  const int k = part_.shards;
  const auto ks = static_cast<std::size_t>(k);

  pool_->run_indexed(ks, [this](std::size_t s) { shards_[s]->start(); });

  for (;;) {
    // Drain phase: move channel traffic into heaps, publish next times.
    pool_->run_indexed(ks, [this](std::size_t s) {
      shards_[s]->drain_in();
      next_t_[s] = shards_[s]->next_time();
    });

    // Serial phase: global minimum and per-shard safe bounds. Any
    // message that arrives in shard s after this point was created by
    // processing an event currently in some shard a's heap (chains
    // trace back to the barrier snapshot), so it lands at
    // >= next_t[a] + closure(a, s) >= bound[s].
    double t_min = kInf;
    for (int s = 0; s < k; ++s) t_min = std::min(t_min, next_t_[s]);
    if (t_min == kInf) break;

    bool progress = false;
    for (int s = 0; s < k; ++s) {
      double b = kInf;
      for (int a = 0; a < k; ++a) {
        if (next_t_[a] == kInf) continue;
        const double la = cross_min_[static_cast<std::size_t>(a * k + s)];
        if (la == kInf) continue;
        b = std::min(b, next_t_[a] + la);
      }
      bound_[static_cast<std::size_t>(s)] = b;
      if (next_t_[s] < b) progress = true;
    }

    ++rounds_;
    if (progress) {
      pool_->run_indexed(ks, [this](std::size_t s) {
        shards_[s]->run_window(bound_[s]);
      });
    } else {
      // Zero-lookahead standstill: every pending minimum is blocked by
      // a zero-length path. Deliver exactly the current generation at
      // t_min; progress is guaranteed (some shard sits at t_min).
      ++wave_rounds_;
      const double t = t_min;
      pool_->run_indexed(ks, [this, t](std::size_t s) {
        if (shards_[s]->next_time() == t) shards_[s]->run_wave(t);
      });
    }
  }

  stats_ = RunStats{};
  for (const auto& sh : shards_) {
    stats_.algorithm_messages += sh->stats.algorithm_messages;
    stats_.control_messages += sh->stats.control_messages;
    stats_.recovery_messages += sh->stats.recovery_messages;
    stats_.algorithm_cost += sh->stats.algorithm_cost;
    stats_.control_cost += sh->stats.control_cost;
    stats_.recovery_cost += sh->stats.recovery_cost;
    stats_.completion_time =
        std::max(stats_.completion_time, sh->stats.completion_time);
    stats_.events += sh->stats.events;
  }
  return stats_;
}

bool ShardEngine::all_finished() const {
  return std::all_of(finish_time_.begin(), finish_time_.end(),
                     [](double t) { return t >= 0; });
}

double ShardEngine::last_finish_time() const {
  require(all_finished(), "not all nodes have finished");
  return *std::max_element(finish_time_.begin(), finish_time_.end());
}

std::int64_t ShardEngine::edge_message_count(EdgeId e) const {
  const auto c = static_cast<std::size_t>(2 * e);
  return channel_messages_[0][c] + channel_messages_[0][c + 1] +
         channel_messages_[1][c] + channel_messages_[1][c + 1] +
         channel_messages_[2][c] + channel_messages_[2][c + 1];
}

std::int64_t ShardEngine::edge_message_count(EdgeId e, MsgClass cls) const {
  const auto c = static_cast<std::size_t>(2 * e);
  const auto& counts = channel_messages_[class_index(cls)];
  return counts[c] + counts[c + 1];
}

std::int64_t ShardEngine::max_edge_message_count() const {
  std::int64_t best = 0;
  for (EdgeId e = 0; e < graph_->edge_count(); ++e) {
    best = std::max(best, edge_message_count(e));
  }
  return best;
}

std::int64_t ShardEngine::max_edge_message_count(MsgClass cls) const {
  std::int64_t best = 0;
  for (EdgeId e = 0; e < graph_->edge_count(); ++e) {
    best = std::max(best, edge_message_count(e, cls));
  }
  return best;
}

}  // namespace csca
