// Per-process state saving for the optimistic engine.
//
// Time Warp (par/timewarp_engine.h) snapshots a process before every
// speculative delivery so rollback can restore it byte-exactly. Two
// storage paths hide behind one handle type:
//
//   * slab copies — for PooledStore arenas with a copyable concrete
//     type, the store's snapshot slab copy-assigns elements in and out
//     of a typed deque (one arena, recycled slots: no per-snapshot heap
//     object, so the SCALE-1 allocation model of docs/scale.md holds);
//   * clone virtuals — the from_factory fallback calls
//     Process::save_state / restore_state, which concrete protocols
//     implement as a copy-construct / copy-assign pair. Heap churn is
//     bounded by the slot free list: a dropped snapshot's slot (and its
//     clone allocation pattern) is recycled.
//
// Fossil collection is `drop`: once GVT passes an event, its snapshot
// can never be restored again and its slot returns to the free list.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/engine.h"
#include "sim/process_store.h"

namespace csca {

/// One consumer's snapshot store. Each optimistic-engine shard owns one
/// instance covering the nodes it hosts, so concurrent save/restore of
/// disjoint node sets is lock-free by construction.
class SavedStates {
 public:
  using Store = PooledStore<Process>;

  explicit SavedStates(const Store* store) : store_(store) {
    require(store != nullptr, "saved states need a process store");
    if (store_->snapshots_supported()) {
      slab_ = store_->make_snapshot_slab();
    }
  }

  /// Snapshots node v's process; returns a handle for restore/drop.
  std::uint32_t save(NodeId v) {
    if (slab_ != nullptr) return store_->save_snapshot(slab_.get(), v);
    std::unique_ptr<Process> copy = store_->at(v).save_state();
    require(copy != nullptr,
            "process does not implement save_state; the optimistic "
            "engine cannot host it (add the save/restore override pair)");
    if (!free_.empty()) {
      const std::uint32_t h = free_.back();
      free_.pop_back();
      clones_[h] = std::move(copy);
      return h;
    }
    clones_.push_back(std::move(copy));
    return static_cast<std::uint32_t>(clones_.size() - 1);
  }

  /// Restores node v's process to the snapshot in `handle`. Restore
  /// does not consume the handle; rollback restores newest-first, drops
  /// each handle after restoring it, and re-saves on re-delivery.
  void restore(NodeId v, std::uint32_t handle) {
    if (slab_ != nullptr) {
      store_->restore_snapshot(slab_.get(), v, handle);
      return;
    }
    store_->at(v).restore_state(*clones_[handle]);
  }

  /// Fossil-collects a snapshot: the slot is recycled.
  void drop(std::uint32_t handle) {
    if (slab_ != nullptr) {
      store_->drop_snapshot(slab_.get(), handle);
    } else {
      clones_[handle].reset();
      free_.push_back(handle);
    }
    ++dropped_;
  }

  /// Snapshots released so far (rollback consumption plus fossil
  /// collection) — observable for the GVT/fossil property tests.
  std::int64_t dropped() const { return dropped_; }

 private:
  const Store* store_;
  std::shared_ptr<void> slab_;  // slab path (pooled copyable stores)
  // Clone-path storage (from_factory stores).
  std::vector<std::unique_ptr<Process>> clones_;
  std::vector<std::uint32_t> free_;
  std::int64_t dropped_ = 0;
};

}  // namespace csca
