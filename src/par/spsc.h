// Single-producer single-consumer channel for cross-shard message
// forwarding.
//
// One channel exists per ordered shard pair (a -> b): only shard a's
// worker pushes, only shard b's worker pops, so a wait-free linked
// queue with one release/acquire pair per element suffices — no CAS, no
// locks on the engine's cross-shard send path. The conservative engine
// drains channels at round barriers, but the channel itself is safe for
// fully concurrent push/pop, so the rounds' drain placement is a
// scheduling choice rather than a correctness requirement.
//
// Memory ordering: push publishes the node with a release store to the
// predecessor's `next`; pop reads it with an acquire load, so the
// consumer sees the fully-constructed value (and anything the producer
// wrote before pushing, e.g. the lineage records a forwarded message
// points into).
#pragma once

#include <atomic>
#include <utility>

#include "util/require.h"

namespace csca {

template <typename T>
class SpscChannel {
 public:
  SpscChannel() : head_(new Node), tail_(head_) {}

  SpscChannel(const SpscChannel&) = delete;
  SpscChannel& operator=(const SpscChannel&) = delete;

  ~SpscChannel() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  /// Producer side. Wait-free: one allocation + one release store.
  void push(T value) {
    Node* node = new Node;
    node->value = std::move(value);
    tail_->next.store(node, std::memory_order_release);
    tail_ = node;
  }

  /// Consumer side: pops the oldest element into out. Returns false
  /// when the channel is (momentarily) empty.
  bool pop(T& out) {
    Node* next = head_->next.load(std::memory_order_acquire);
    if (next == nullptr) return false;
    out = std::move(next->value);
    delete head_;
    head_ = next;
    return true;
  }

  /// Consumer side: pops every currently-visible element into f, in
  /// push order. Returns how many were consumed.
  template <typename F>
  std::size_t drain(F&& f) {
    std::size_t count = 0;
    T value;
    while (pop(value)) {
      f(std::move(value));
      ++count;
    }
    return count;
  }

  /// Consumer-side emptiness probe (a momentary answer under
  /// concurrent pushes).
  bool empty() const {
    return head_->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  // head_ is a consumed dummy; the logical front is head_->next.
  struct Node {
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  Node* head_;  // consumer-owned
  Node* tail_;  // producer-owned
};

}  // namespace csca
