// Optimistic (Time Warp) parallel engine — the third backend behind
// sim/engine.h, next to the sequential Network and the conservative
// ShardEngine.
//
// The conservative engine's safe-time windows come from the min-plus
// closure of per-edge minimum delays; at zero lookahead they collapse
// to one causal generation per barrier round (waves), serializing the
// run. Time Warp removes the windows entirely: every shard executes
// its pending events speculatively in local order, and correctness is
// restored after the fact —
//
//   * state saving: each process is snapshotted (par/state_save.h)
//     before every speculative delivery;
//   * rollback: a straggler — a cross-shard message whose position in
//     the engine's total event order (time, then ShardEngine's
//     genealogical tie-break) precedes something already executed —
//     undoes the executed suffix: protocol states restore from their
//     snapshots, per-channel send counters, FIFO clamps, and ledger
//     charges rewind exactly, and undone events re-enter the pending
//     queue;
//   * anti-messages: undoing an event that sent cross-shard messages
//     emits an anti-message per send; the receiver annihilates the
//     positive (or first rolls back past it, if already executed).
//     Cross-shard channels are FIFO SPSC, so a positive always
//     precedes its anti and annihilation never misses;
//   * GVT commit: each barrier round computes the global virtual time
//     — the minimum over pending and in-flight event times — which is
//     provably monotone and a floor under any future rollback. Events
//     strictly below GVT commit: only then do their ledger deltas
//     enter the engine's RunStats, their snapshots fossil-collect, and
//     any commit observer fires. Cost accounting is therefore billed
//     at commit, never speculatively — golden ledgers, check/ digests,
//     and ControlMeter admission stay byte-identical to the keyed
//     sequential reference at every worker count;
//   * calendar queue: the far (beyond-horizon) majority of each
//     shard's pending set sits in a bucketed calendar
//     (par/calqueue.h); only the near horizon pays binary-heap sifts.
//
// Determinism contract: identical to ShardEngine. Keyed delay draws
// (DelayModel::delay_keyed over (seed, channel, per-channel count))
// plus the genealogical same-time order mean a rolled-back handler
// re-executes with byte-identical inputs and re-draws byte-identical
// delays — speculation is invisible in every committed observable.
// FaultInjector fates are keyed off the same counts and replay
// identically through rollback.
//
// Not supported (same list as ShardEngine): InvariantObserver hooks,
// step()/budget slicing. Observers that must not see retracted
// deliveries use set_commit_hook, which fires per committed event only.
#pragma once

#include <array>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "par/partition.h"
#include "par/run_pool.h"
#include "par/spsc.h"
#include "sim/delay.h"
#include "sim/engine.h"
#include "sim/process_store.h"
#include "util/rng.h"

namespace csca {

class FaultInjector;

class TimeWarpEngine final : public ProcessHost {
 public:
  struct Options {
    int shards = 1;
    int threads = 0;  ///< pool workers; 0 means one per shard
    /// Max speculative deliveries per shard per barrier round. Bounds
    /// how far a shard can run ahead of its peers between drains — the
    /// throttle on rollback depth (and on wasted speculation).
    int quantum = 256;
    /// Hub/delegate handling for the node partition (par/partition.h).
    PartitionOptions partition;
  };

  using ProcessStore = PooledStore<Process>;

  TimeWarpEngine(const Graph& g, const ProcessFactory& factory,
                 std::unique_ptr<DelayModel> delay, std::uint64_t seed,
                 Options opt);
  TimeWarpEngine(const Graph& g, const ProcessFactory& factory,
                 std::unique_ptr<DelayModel> delay, std::uint64_t seed = 1);
  /// Hosts a pre-built (typically pooled) store; pooled stores with a
  /// copyable element type snapshot by arena-slab copy instead of
  /// per-object clone allocations.
  TimeWarpEngine(const Graph& g, ProcessStore store,
                 std::unique_ptr<DelayModel> delay, std::uint64_t seed,
                 Options opt);
  ~TimeWarpEngine() override;

  /// Runs the protocol to quiescence and returns the committed ledger.
  /// Single-shot: a TimeWarpEngine instance runs once.
  RunStats run();

  /// Attaches a fault injector (same contract as ShardEngine/Network:
  /// before run(); inactive injectors are discarded). Fates key off the
  /// per-channel send counts, which rollback rewinds, so faulted runs
  /// stay bit-identical to the keyed Network at every shard count.
  void set_faults(const FaultInjector* f);

  // -- observability -------------------------------------------------------

  int shard_count() const { return part_.shards; }
  const ShardPartition& partition() const { return part_; }
  std::int64_t rounds() const { return rounds_; }
  /// Rollback episodes, and total events undone across them.
  std::int64_t rollbacks() const { return rollbacks_; }
  std::int64_t rolled_back_events() const { return rolled_back_events_; }
  /// Anti-messages emitted for undone cross-shard sends, and positives
  /// annihilated by them. After run() the two are equal: every anti
  /// finds exactly one positive.
  std::int64_t anti_messages() const { return anti_messages_; }
  std::int64_t annihilations() const { return annihilations_; }
  /// Deliveries executed speculatively (committed + later undone).
  std::int64_t speculative_events() const { return speculative_events_; }
  /// Committed deliveries (== stats().events).
  std::int64_t committed_events() const { return stats_.events; }
  /// Final GVT (+inf after a completed run).
  double gvt() const { return gvt_; }

  /// A committed delivery, in per-shard commit order (shards visited in
  /// id order each GVT round).
  struct CommittedEvent {
    double t = 0;
    NodeId node = kNoNode;
    bool is_edge = false;  ///< edge delivery (vs self-delivery/timer)
  };
  using CommitHook = std::function<void(const CommittedEvent&)>;
  /// Observer of committed events only — the engine's replacement for
  /// the sequential InvariantObserver surface: speculative deliveries
  /// that may later be retracted are never shown. Serial (fires inside
  /// the barrier-synchronized GVT phase). Must be set before run().
  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }

  /// One GVT round's summary, for the GVT/fossil property tests.
  struct GvtSample {
    std::int64_t round = 0;
    double gvt = 0;  ///< the new GVT (== the candidate minimum)
    /// Min pending event time over shards, and min arrival/target time
    /// over messages still in flight, at the round's barrier. GVT is
    /// their minimum, so gvt <= both.
    double min_pending = 0;
    double min_in_flight = 0;
    std::int64_t committed_events = 0;  ///< total after this round's commits
    /// Newest event time whose snapshot was fossil-collected this
    /// round; -inf if none. Fossil collection never frees state at or
    /// above GVT.
    double max_freed_time = -std::numeric_limits<double>::infinity();
  };
  using GvtHook = std::function<void(const GvtSample&)>;
  /// Fires once per GVT round (serial, after commits). Must be set
  /// before run().
  void set_gvt_hook(GvtHook hook) { gvt_hook_ = std::move(hook); }

  /// Deterministic worker pacing for rollback torture tests: the hook
  /// returns shard s's speculative-delivery budget for the given round
  /// (values < 0 mean "the configured quantum"; 0 stalls the shard for
  /// the round — it still drains, so stragglers and anti-messages keep
  /// flowing). Called serially each round. Must be set before run().
  using PaceHook = std::function<int(int shard, std::int64_t round)>;
  void set_pace_hook(PaceHook hook) { pace_hook_ = std::move(hook); }

  // -- ProcessHost: post-run access, identical semantics to Network --------

  const Graph& graph() const override { return *graph_; }
  const RunStats& stats() const override { return stats_; }
  Process& process(NodeId v) override {
    graph_->check_node(v);
    return processes_.at(v);
  }
  std::size_t process_state_bytes() const {
    return processes_.state_bytes();
  }
  bool finished(NodeId v) const override {
    return finish_time_[static_cast<std::size_t>(v)] >= 0;
  }
  double finish_time(NodeId v) const override {
    return finish_time_[static_cast<std::size_t>(v)];
  }
  bool all_finished() const override;
  double last_finish_time() const override;
  std::int64_t edge_message_count(EdgeId e) const override;
  std::int64_t edge_message_count(EdgeId e, MsgClass cls) const override;
  std::int64_t max_edge_message_count() const override;
  std::int64_t max_edge_message_count(MsgClass cls) const override;

 private:
  /// Birth certificate of a delivered event — same shape and total
  /// order as ShardEngine::Lineage (see the ordering discussion there),
  /// but compared by chain value rather than pointer identity: rollback
  /// and re-send can create value-equal duplicate records for one
  /// logical event, and a pointer comparison would declare their
  /// descendant chains incomparable (breaking the pending queue's
  /// strict weak ordering). Records are immutable and arena-owned by
  /// the delivering shard; rollback never reclaims them. A re-executed
  /// handler republishes its first execution's record (memoized per
  /// message slot) so chains stay pointer-shared on the fast path.
  struct Lineage {
    double t = 0;             ///< delivery time; -1 for on_start markers
    const Lineage* parent = nullptr;  ///< null => on_start marker
    std::uint32_t send_index = 0;  ///< birth send's index in its handler
    NodeId origin = kNoNode;  ///< marker only: the node starting up
  };

  /// A cross-shard message: a speculative positive, or the anti-message
  /// annihilating it. uid pairs the two (sender-shard tagged, unique
  /// per positive; a re-sent positive after rollback gets a fresh uid).
  struct TwCross {
    double t = 0;  ///< positive: FIFO-clamped arrival; anti: target's t
    const Lineage* parent = nullptr;
    std::uint32_t send_index = 0;
    std::uint64_t uid = 0;
    bool anti = false;
    Message msg;
  };

  using Batch = std::vector<TwCross>;

  struct Shard;

  static constexpr double kInf = std::numeric_limits<double>::infinity();

  static std::size_t class_index(MsgClass cls) {
    return cls == MsgClass::kAlgorithm ? 0
           : cls == MsgClass::kControl ? 1
                                       : 2;
  }
  SpscChannel<Batch>& channel(int from, int to) {
    return *channels_[static_cast<std::size_t>(from) *
                          static_cast<std::size_t>(part_.shards) +
                      static_cast<std::size_t>(to)];
  }
  SpscChannel<Batch>& return_channel(int from, int to) {
    return *returns_[static_cast<std::size_t>(from) *
                         static_cast<std::size_t>(part_.shards) +
                     static_cast<std::size_t>(to)];
  }

  /// Serial GVT phase: candidate from the barrier snapshot, commits,
  /// hooks. Returns false when the run has terminated.
  bool gvt_round();
  void commit_shard(Shard& sh, double bound, double& max_freed);

  const Graph* graph_;
  ProcessStore processes_;
  std::unique_ptr<DelayModel> delay_;
  std::uint64_t seed_;
  ShardPartition part_;
  int quantum_;

  // Sender-owned per-directed-channel state (2 * edge + direction),
  // written race-free by the channel's unique sender shard — rollback
  // runs on the owning shard's worker, so the rewinds are too.
  std::vector<double> last_arrival_;
  std::vector<std::uint64_t> channel_sends_;
  std::array<std::vector<std::int64_t>, kMsgClassCount> channel_messages_;

  // Owner-shard-written per-node state.
  std::vector<double> finish_time_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<SpscChannel<Batch>>> channels_;
  std::vector<std::unique_ptr<SpscChannel<Batch>>> returns_;
  std::vector<double> pending_min_;   // per-shard, published at barrier
  std::vector<double> in_flight_min_; // per-shard, msgs flushed this phase
  std::vector<int> budget_;           // per-shard round budget (pacing)
  std::unique_ptr<RunPool> pool_;

  RunStats stats_;  ///< committed ledger only
  double gvt_ = 0;
  std::int64_t rounds_ = 0;
  std::int64_t rollbacks_ = 0;
  std::int64_t rolled_back_events_ = 0;
  std::int64_t anti_messages_ = 0;
  std::int64_t annihilations_ = 0;
  std::int64_t speculative_events_ = 0;
  bool ran_ = false;
  const FaultInjector* faults_ = nullptr;
  CommitHook commit_hook_;
  GvtHook gvt_hook_;
  PaceHook pace_hook_;
};

}  // namespace csca
