// A lightweight C++ lexer for the determinism & cost-accounting static
// analyzer (docs/analysis.md).
//
// The rules in rules.h work on token patterns, not an AST: every
// contract they enforce (no unordered-container range-iteration, no
// wall-clock reads, explicit MsgClass at send sites, ledger mutation
// confinement) is visible at the token level, so a full frontend —
// libclang, a parser, a preprocessor — would buy nothing but a
// dependency the container does not ship. The lexer's only obligations
// are (a) never misclassify code as comment/string or vice versa, so
// rules neither fire on prose nor miss code, and (b) carry line
// numbers, so findings and suppressions anchor to file:line.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace csca::analyze {

enum class TokKind {
  kIdentifier,  ///< [A-Za-z_][A-Za-z0-9_]*
  kNumber,      ///< integer / float literals incl. hex floats, separators
  kString,      ///< "..." incl. raw strings and encoding prefixes
  kCharLit,     ///< '...'
  kPunct,       ///< operators & punctuation, longest-match (::, ->, +=, ...)
  kComment,     ///< // ... or /* ... */, text includes the delimiters
};

/// One token. `text` views into the lexed buffer, which must outlive the
/// token. `line` is 1-based and refers to the token's first character.
struct Token {
  TokKind kind = TokKind::kPunct;
  std::string_view text;
  int line = 0;

  bool is(TokKind k, std::string_view t) const {
    return kind == k && text == t;
  }
  bool ident(std::string_view t) const {
    return is(TokKind::kIdentifier, t);
  }
  bool punct(std::string_view t) const { return is(TokKind::kPunct, t); }
};

/// Lexes the whole buffer. Unterminated strings/comments are tolerated
/// (the token runs to end of input): the analyzer must degrade to "scan
/// what is there", never crash on a source file the compiler would
/// reject anyway.
std::vector<Token> lex(std::string_view text);

/// The tokens of `toks` with comments removed — what the code rules
/// scan. Comment tokens are what the suppression parser scans.
std::vector<Token> strip_comments(const std::vector<Token>& toks);

}  // namespace csca::analyze
