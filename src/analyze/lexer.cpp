#include "analyze/lexer.h"

#include <cctype>

namespace csca::analyze {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Multi-character punctuators, longest first within a shared prefix so
// a linear first-match scan is a longest-match scan.
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "+=", "-=",
    "*=",  "/=",  "%=",  "&=",  "|=", "^=", "==", "!=", "<=", ">=",
    "&&",  "||",  "<<",  ">>",  "##",
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        out.push_back(line_comment());
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        out.push_back(block_comment());
        continue;
      }
      if (c == '"') {
        out.push_back(string_lit(pos_));
        continue;
      }
      if (c == '\'') {
        out.push_back(char_lit());
        continue;
      }
      if (ident_start(c)) {
        out.push_back(identifier_or_prefixed_string(out));
        continue;
      }
      if (digit(c) || (c == '.' && digit(peek(1)))) {
        out.push_back(number());
        continue;
      }
      out.push_back(punct());
    }
    return out;
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  Token make(TokKind kind, std::size_t begin, int line) const {
    return Token{kind, text_.substr(begin, pos_ - begin), line};
  }

  Token line_comment() {
    const std::size_t begin = pos_;
    const int line = line_;
    while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
    return make(TokKind::kComment, begin, line);
  }

  Token block_comment() {
    const std::size_t begin = pos_;
    const int line = line_;
    pos_ += 2;
    while (pos_ < text_.size() &&
           !(text_[pos_] == '*' && peek(1) == '/')) {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ < text_.size()) pos_ += 2;  // consume the closing */
    return make(TokKind::kComment, begin, line);
  }

  // pos_ sits on the opening quote; `begin` may precede it (encoding
  // prefix). Handles escapes; newlines inside (ill-formed anyway) keep
  // the line count honest.
  Token string_lit(std::size_t begin) {
    const int line = line_;
    ++pos_;  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ < text_.size()) ++pos_;  // closing quote
    return make(TokKind::kString, begin, line);
  }

  // pos_ sits on the quote of R"delim( ... )delim".
  Token raw_string(std::size_t begin) {
    const int line = line_;
    ++pos_;  // opening quote
    std::size_t d = pos_;
    while (d < text_.size() && text_[d] != '(') ++d;
    const std::string closer =
        ")" + std::string(text_.substr(pos_, d - pos_)) + "\"";
    pos_ = d;
    while (pos_ < text_.size() &&
           text_.substr(pos_, closer.size()) != closer) {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
    pos_ = pos_ < text_.size() ? pos_ + closer.size() : text_.size();
    return make(TokKind::kString, begin, line);
  }

  Token char_lit() {
    const std::size_t begin = pos_;
    const int line = line_;
    ++pos_;  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '\'') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      ++pos_;
    }
    if (pos_ < text_.size()) ++pos_;
    return make(TokKind::kCharLit, begin, line);
  }

  // An identifier — unless it is a string-literal encoding prefix (R,
  // u8R, L"...", ...) glued to a quote, in which case the whole literal
  // is one string token.
  Token identifier_or_prefixed_string(const std::vector<Token>&) {
    const std::size_t begin = pos_;
    const int line = line_;
    while (pos_ < text_.size() && ident_char(text_[pos_])) ++pos_;
    const std::string_view name = text_.substr(begin, pos_ - begin);
    if (pos_ < text_.size() && text_[pos_] == '"') {
      const bool raw = !name.empty() && name.back() == 'R';
      const std::string_view prefix = raw ? name.substr(0, name.size() - 1)
                                          : name;
      if (prefix.empty() || prefix == "u8" || prefix == "u" ||
          prefix == "U" || prefix == "L") {
        return raw ? raw_string(begin) : string_lit(begin);
      }
    }
    return Token{TokKind::kIdentifier, name, line};
  }

  // Numbers, including hex floats (0x1.0p-53) and digit separators
  // (1'000'000). A sign is part of the token only right after an
  // exponent marker; a ' only when splicing digits.
  Token number() {
    const std::size_t begin = pos_;
    const int line = line_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (ident_char(c) || c == '.') {
        ++pos_;
        continue;
      }
      if (c == '\'' && ident_char(peek(1))) {
        ++pos_;
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = text_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    return make(TokKind::kNumber, begin, line);
  }

  Token punct() {
    const std::size_t begin = pos_;
    const int line = line_;
    const std::string_view rest = text_.substr(pos_);
    for (std::string_view p : kPuncts) {
      if (rest.substr(0, p.size()) == p) {
        pos_ += p.size();
        return make(TokKind::kPunct, begin, line);
      }
    }
    ++pos_;
    return make(TokKind::kPunct, begin, line);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view text) { return Lexer(text).run(); }

std::vector<Token> strip_comments(const std::vector<Token>& toks) {
  std::vector<Token> out;
  out.reserve(toks.size());
  for (const Token& t : toks) {
    if (t.kind != TokKind::kComment) out.push_back(t);
  }
  return out;
}

}  // namespace csca::analyze
