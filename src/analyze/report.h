// Findings, suppressions, and the deterministic report formats of the
// static analyzer (docs/analysis.md).
//
// Determinism is a contract here, not a nicety: the analyzer polices
// the repo's bit-identical-runs guarantee, so its own output must be
// byte-identical run to run — findings are sorted by (path, line,
// rule), the JSON carries no timestamps or absolute paths, and the
// report-determinism test (tests/analyze/) diffs two scans byte for
// byte.
#pragma once

#include <string>
#include <vector>

namespace csca::analyze {

/// One rule violation at a source location. `path` is repo-relative
/// with forward slashes.
struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  std::string message;

  friend bool operator==(const Finding&, const Finding&) = default;
};

/// One honored inline suppression: a finding that matched an
/// allow-annotation (rules.h documents the syntax). Kept in the
/// report so "every shipped suppression carries a written reason" is
/// auditable from the JSON alone.
struct Suppressed {
  std::string rule;
  std::string path;
  int line = 0;
  std::string reason;
};

struct Report {
  std::vector<std::string> roots;   ///< as given on the command line
  int files_scanned = 0;
  std::vector<Finding> findings;    ///< unsuppressed; sorted
  std::vector<Suppressed> suppressed;  ///< sorted

  bool clean() const { return findings.empty(); }
};

/// Sorts findings/suppressions into the canonical (path, line, rule)
/// order. analyze() calls this; exposed for tests that build reports
/// by hand.
void canonicalize(Report& r);

/// The machine format: pretty-printed JSON, canonical field order,
/// trailing newline. Byte-identical for identical file contents.
std::string to_json(const Report& r);

/// The human format: one `path:line: RULE: message` line per finding
/// plus a summary that always states the finding count (the check.sh
/// gate requires the count to be printed even when clean).
std::string to_text(const Report& r);

}  // namespace csca::analyze
