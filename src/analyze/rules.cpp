#include "analyze/rules.h"

#include <algorithm>
#include <array>
#include <set>
#include <string>

namespace csca::analyze {
namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

const Token& at(const std::vector<Token>& t, std::size_t i) {
  static const Token kEnd{TokKind::kPunct, "", 0};
  return i < t.size() ? t[i] : kEnd;
}

template <typename Range>
bool any_of(std::string_view s, const Range& xs) {
  return std::find(std::begin(xs), std::end(xs), s) != std::end(xs);
}
bool any_of(std::string_view s, std::initializer_list<std::string_view> xs) {
  return std::find(xs.begin(), xs.end(), s) != xs.end();
}

// i sits on `<`; returns the index just past the matching `>`, treating
// `>>` as two closes. kNpos when unbalanced (macro soup, `a < b`
// comparisons that never close) — callers skip rather than guess.
std::size_t skip_angles(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (t[i].punct("<")) {
      ++depth;
    } else if (t[i].punct(">")) {
      if (--depth == 0) return i + 1;
    } else if (t[i].punct(">>")) {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (t[i].punct(";") || t[i].punct("{")) {
      return kNpos;  // ran off the type: this `<` was a comparison
    }
  }
  return kNpos;
}

// i sits on `(`; returns the index of the matching `)`, tracking all
// three bracket kinds. kNpos when unbalanced.
std::size_t find_close_paren(const std::vector<Token>& t, std::size_t i) {
  int paren = 0;
  int bracket = 0;
  int brace = 0;
  for (; i < t.size(); ++i) {
    const std::string_view p =
        t[i].kind == TokKind::kPunct ? t[i].text : std::string_view{};
    if (p == "(") ++paren;
    else if (p == ")" && --paren == 0) return i;
    else if (p == "[") ++bracket;
    else if (p == "]") --bracket;
    else if (p == "{") ++brace;
    else if (p == "}") --brace;
  }
  return kNpos;
}

// Top-level comma count inside a call whose `(` is at open and `)` at
// close; 0 arguments when the parens are empty.
int count_args(const std::vector<Token>& t, std::size_t open,
               std::size_t close) {
  if (close == open + 1) return 0;
  int args = 1;
  int paren = 0;
  int bracket = 0;
  int brace = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    if (t[i].kind != TokKind::kPunct) continue;
    const std::string_view p = t[i].text;
    if (p == "(") ++paren;
    else if (p == ")") --paren;
    else if (p == "[") ++bracket;
    else if (p == "]") --bracket;
    else if (p == "{") ++brace;
    else if (p == "}") --brace;
    else if (p == "," && paren == 0 && bracket == 0 && brace == 0) ++args;
  }
  return args;
}

constexpr std::string_view kUnorderedContainers[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

// ---------------------------------------------------------------- DET-1
// Pass 1 collects every name declared with an unordered-container type
// (variables, members, parameters). Pass 2 flags range-for statements
// whose sequence expression mentions any collected name. Matching on
// "mentions" overapproximates (member access through a local alias
// still hits) — the cheap direction to be wrong in: a rare false
// positive earns an ordered-drain annotation, a false negative would
// silently ship schedule-dependent iteration.
void det1(const FileCtx& ctx, std::vector<Finding>& out) {
  if (!ctx.sim_visible) return;
  const std::vector<Token>& t = *ctx.code;

  std::set<std::string, std::less<>> unordered_names;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier ||
        !any_of(t[i].text, kUnorderedContainers) ||
        !at(t, i + 1).punct("<")) {
      continue;
    }
    std::size_t j = skip_angles(t, i + 1);
    if (j == kNpos) continue;
    // The declared name: the last identifier before the declarator
    // ends. Skips cv/ref/pointer decoration and nested-name tails
    // (`::iterator it`).
    std::string declared;
    for (; j < t.size(); ++j) {
      if (t[j].kind == TokKind::kIdentifier) {
        declared = std::string(t[j].text);
      } else if (!t[j].punct("*") && !t[j].punct("&") &&
                 !t[j].punct("::")) {
        break;
      }
    }
    if (!declared.empty()) unordered_names.insert(declared);
  }
  if (unordered_names.empty()) return;

  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].ident("for") || !t[i + 1].punct("(")) continue;
    const std::size_t close = find_close_paren(t, i + 1);
    if (close == kNpos) continue;
    // The range-for `:` sits at top level inside the for-parens
    // (structured bindings hide theirs inside [...]; `::` is one
    // token, so it cannot be mistaken for one).
    std::size_t colon = kNpos;
    int bracket = 0;
    int brace = 0;
    int paren = 0;
    for (std::size_t j = i + 2; j < close; ++j) {
      if (t[j].kind != TokKind::kPunct) continue;
      const std::string_view p = t[j].text;
      if (p == "[") ++bracket;
      else if (p == "]") --bracket;
      else if (p == "{") ++brace;
      else if (p == "}") --brace;
      else if (p == "(") ++paren;
      else if (p == ")") --paren;
      else if (p == ":" && bracket == 0 && brace == 0 && paren == 0) {
        colon = j;
        break;
      }
    }
    if (colon == kNpos) continue;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (t[j].kind == TokKind::kIdentifier &&
          unordered_names.count(t[j].text) > 0) {
        out.push_back(Finding{
            "DET-1", ctx.path, t[i].line,
            "range-iteration over unordered container '" +
                std::string(t[j].text) +
                "' in simulation-visible code; hash order is not "
                "deterministic — drain through a sorted copy or an "
                "ordered container, or annotate the proof with "
                "csca-analyze: allow(DET-1)"});
        break;
      }
    }
  }
}

// ---------------------------------------------------------------- DET-2
void det2(const FileCtx& ctx, std::vector<Finding>& out) {
  if (ctx.bench_timing) return;
  const std::vector<Token>& t = *ctx.code;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier) continue;
    const std::string_view name = t[i].text;
    const Token& prev = i > 0 ? t[i - 1] : at(t, kNpos);
    const bool member_access = prev.punct(".") || prev.punct("->");
    if ((name == "rand" || name == "srand") && at(t, i + 1).punct("(") &&
        !member_access) {
      out.push_back(Finding{
          "DET-2", ctx.path, t[i].line,
          std::string(name) +
              "() draws from ambient global state; route randomness "
              "through the keyed Rng stream API (util/rng.h)"});
    } else if (name == "random_device") {
      out.push_back(Finding{
          "DET-2", ctx.path, t[i].line,
          "std::random_device is nondeterministic by construction; "
          "derive seeds with derive_stream_seed/Rng::split instead"});
    } else if (any_of(name, {"system_clock", "steady_clock",
                             "high_resolution_clock"}) &&
               at(t, i + 1).punct("::") && at(t, i + 2).ident("now")) {
      out.push_back(Finding{
          "DET-2", ctx.path, t[i].line,
          "wall-clock read (" + std::string(name) +
              "::now) outside the bench-timing allowlist; simulation "
              "logic must use virtual time only"});
    }
  }
}

// ---------------------------------------------------------------- DET-3
// First template argument of an associative container / std::less, as
// a token range; pointer keys end in `*`.
void det3(const FileCtx& ctx, std::vector<Finding>& out) {
  const std::vector<Token>& t = *ctx.code;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier) continue;
    const std::string_view name = t[i].text;
    const bool assoc =
        any_of(name, {"map", "multimap", "set", "multiset"}) ||
        any_of(name, kUnorderedContainers);
    if ((assoc || name == "less") && at(t, i + 1).punct("<")) {
      const std::size_t end = skip_angles(t, i + 1);
      if (end == kNpos) continue;
      // Last token of the first top-level template argument.
      int depth = 0;
      std::size_t last = kNpos;
      for (std::size_t j = i + 2; j + 1 < end; ++j) {
        if (t[j].punct("<")) ++depth;
        else if (t[j].punct(">")) --depth;
        else if (t[j].punct(">>")) depth -= 2;
        else if (t[j].punct(",") && depth == 0) break;
        if (depth == 0) last = j;
        else if (depth < 0) break;
      }
      if (last != kNpos && t[last].punct("*")) {
        out.push_back(Finding{
            "DET-3", ctx.path, t[i].line,
            "'" + std::string(name) +
                "' keyed on a pointer type: addresses vary across runs, "
                "so any order derived from them is nondeterministic — "
                "key on a stable id (NodeId/EdgeId/index) instead"});
      }
    }
    if (name == "reinterpret_cast" && at(t, i + 1).punct("<")) {
      const std::size_t end = skip_angles(t, i + 1);
      if (end == kNpos) continue;
      for (std::size_t j = i + 2; j + 1 < end; ++j) {
        if (t[j].kind == TokKind::kIdentifier &&
            (t[j].text == "uintptr_t" || t[j].text == "intptr_t")) {
          out.push_back(Finding{
              "DET-3", ctx.path, t[i].line,
              "pointer value laundered to an integer "
              "(reinterpret_cast<" +
                  std::string(t[j].text) +
                  ">): using addresses as keys or tie-breaks is "
                  "nondeterministic across runs"});
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------- DET-4
void det4(const FileCtx& ctx, std::vector<Finding>& out) {
  if (ctx.rng_home) return;
  const std::vector<Token>& t = *ctx.code;
  for (const Token& tok : t) {
    if (tok.kind == TokKind::kIdentifier &&
        any_of(tok.text,
               {"mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
                "default_random_engine", "ranlux24", "ranlux24_base",
                "ranlux48", "ranlux48_base", "knuth_b"})) {
      out.push_back(Finding{
          "DET-4", ctx.path, tok.line,
          "raw std random engine '" + std::string(tok.text) +
              "' outside util/; construct a keyed stream via Rng::split "
              "or derive_stream_seed so sibling runs stay decorrelated"});
    }
  }
}

// ---------------------------------------------------------------- COST-1
void cost1(const FileCtx& ctx, std::vector<Finding>& out) {
  const std::vector<Token>& t = *ctx.code;
  int paren_depth = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].punct("(")) ++paren_depth;
    else if (t[i].punct(")")) --paren_depth;

    if (t[i].ident("send") && at(t, i + 1).punct("(")) {
      const std::size_t close = find_close_paren(t, i + 1);
      if (close != kNpos && count_args(t, i + 1, close) == 2) {
        out.push_back(Finding{
            "COST-1", ctx.path, t[i].line,
            "send without an explicit MsgClass: two-argument send "
            "call/signature relies on an implicit billing class; name "
            "MsgClass::kAlgorithm or MsgClass::kControl at the site"});
      }
    }
    if (t[i].ident("MsgClass") && paren_depth > 0 &&
        at(t, i + 1).kind == TokKind::kIdentifier &&
        at(t, i + 2).punct("=")) {
      out.push_back(Finding{
          "COST-1", ctx.path, t[i].line,
          "defaulted MsgClass parameter: billing class defaults let "
          "call sites charge the wrong ledger side silently — require "
          "the class explicitly"});
    }
  }
}

// ---------------------------------------------------------------- COST-2
void cost2(const FileCtx& ctx, std::vector<Finding>& out) {
  if (ctx.ledger_accessor) return;
  const std::vector<Token>& t = *ctx.code;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!t[i].punct(".") && !t[i].punct("->")) continue;
    if (t[i + 1].kind != TokKind::kIdentifier ||
        !any_of(t[i + 1].text,
                {"algorithm_messages", "control_messages",
                 "recovery_messages", "algorithm_cost", "control_cost",
                 "recovery_cost", "billed"})) {
      continue;
    }
    if (t[i + 2].kind == TokKind::kPunct &&
        any_of(t[i + 2].text, {"=", "+=", "-=", "*=", "/=", "++", "--"})) {
      out.push_back(Finding{
          "COST-2", ctx.path, t[i + 1].line,
          "ledger/meter field '" + std::string(t[i + 1].text) +
              "' mutated outside the engine accessor sites; all billing "
              "flows through the engines' charging rule (or annotate a "
              "non-ledger carrier struct with csca-analyze: "
              "allow(COST-2))"});
    }
  }
}

// ---------------------------------------------------------------- SCALE-1
// Loop bodies as token ranges: for each `for`/`while` head, the body is
// the `{...}` block after the close-paren, or the single statement up
// to the next top-level `;` when unbraced. A difference array marks
// tokens covered by at least one body, so nested loops flag each
// allocation once. Inside a marked range, a `new` expression or a
// make_unique/make_shared call is a per-element heap allocation: on the
// per-node/per-event paths this runs n (or worse, event-count) times
// and defeats the pooled-arena memory model that the million-node
// capacity target rests on. Per-shard or per-run loops that allocate
// O(k) times are the intended suppression case — the annotation states
// why the trip count is not n.
void scale1(const FileCtx& ctx, std::vector<Finding>& out) {
  if (!ctx.sim_visible) return;
  const std::vector<Token>& t = *ctx.code;

  std::vector<int> delta(t.size() + 1, 0);
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if ((!t[i].ident("for") && !t[i].ident("while")) ||
        !t[i + 1].punct("(")) {
      continue;
    }
    const std::size_t close = find_close_paren(t, i + 1);
    if (close == kNpos) continue;
    const std::size_t begin = close + 1;
    std::size_t end = kNpos;
    if (at(t, begin).punct("{")) {
      int brace = 0;
      for (std::size_t j = begin; j < t.size(); ++j) {
        if (t[j].punct("{")) ++brace;
        else if (t[j].punct("}") && --brace == 0) {
          end = j;
          break;
        }
      }
    } else {
      // Unbraced body: one statement, to the `;` outside all brackets.
      // The `do { } while (cond);` tail lands here with an empty range.
      int paren = 0;
      int bracket = 0;
      int brace = 0;
      for (std::size_t j = begin; j < t.size(); ++j) {
        if (t[j].kind != TokKind::kPunct) continue;
        const std::string_view p = t[j].text;
        if (p == "(") ++paren;
        else if (p == ")") --paren;
        else if (p == "[") ++bracket;
        else if (p == "]") --bracket;
        else if (p == "{") ++brace;
        else if (p == "}") --brace;
        else if (p == ";" && paren == 0 && bracket == 0 && brace == 0) {
          end = j;
          break;
        }
      }
    }
    if (end == kNpos) continue;
    ++delta[begin];
    --delta[end];
  }

  int depth = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    depth += delta[i];
    if (depth <= 0 || t[i].kind != TokKind::kIdentifier) continue;
    const std::string_view name = t[i].text;
    const Token& prev = i > 0 ? t[i - 1] : at(t, kNpos);
    if (name == "new" && !prev.ident("operator")) {
      out.push_back(Finding{
          "SCALE-1", ctx.path, t[i].line,
          "'new' inside a loop in simulation-visible code: per-element "
          "heap allocation defeats the pooled-arena memory model "
          "(sim/process_store.h) — hoist the allocation or reserve up "
          "front, or annotate why the trip count is bounded with "
          "csca-analyze: allow(SCALE-1)"});
    } else if ((name == "make_unique" || name == "make_shared") &&
               at(t, i + 1).punct("<")) {
      out.push_back(Finding{
          "SCALE-1", ctx.path, t[i].line,
          "'" + std::string(name) +
              "' inside a loop in simulation-visible code: per-element "
              "heap allocation defeats the pooled-arena memory model "
              "(sim/process_store.h) — hoist the allocation or pool the "
              "states, or annotate why the trip count is bounded with "
              "csca-analyze: allow(SCALE-1)"});
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rule_table() {
  static const std::vector<RuleInfo> kTable = {
      {"DET-1",
       "no range-iteration over unordered containers in "
       "simulation-visible code"},
      {"DET-2",
       "no rand()/random_device/wall-clock reads outside bench timing"},
      {"DET-3", "no pointer values as comparator or ordering keys"},
      {"DET-4", "RNG construction routes through the keyed Rng API"},
      {"COST-1", "send sites name an explicit MsgClass; no defaults"},
      {"COST-2", "ledger/meter fields mutate only at accessor sites"},
      {"SCALE-1",
       "no per-element heap allocation inside simulation-visible loops"},
      {"SUP-1", "suppressions name a known rule and carry a reason"},
  };
  return kTable;
}

bool known_rule(std::string_view id) {
  for (const RuleInfo& r : rule_table()) {
    if (r.id == id) return true;
  }
  return false;
}

void run_rules(const FileCtx& ctx, std::vector<Finding>& out) {
  det1(ctx, out);
  det2(ctx, out);
  det3(ctx, out);
  det4(ctx, out);
  cost1(ctx, out);
  cost2(ctx, out);
  scale1(ctx, out);
}

std::vector<Suppression> parse_suppressions(
    const std::vector<Token>& toks) {
  std::vector<Suppression> out;
  constexpr std::string_view kMarker = "csca-analyze:";
  for (const Token& tok : toks) {
    if (tok.kind != TokKind::kComment) continue;
    const std::string_view text = tok.text;
    for (std::size_t pos = text.find(kMarker); pos != std::string_view::npos;
         pos = text.find(kMarker, pos + kMarker.size())) {
      Suppression s;
      s.line = tok.line;
      std::string_view rest = text.substr(pos + kMarker.size());
      while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
      // Only `allow(` makes this a directive; anything else is prose
      // mentioning the marker. Fail-safe: a typo'd directive suppresses
      // nothing, so the finding it meant to silence still fires.
      if (rest.substr(0, 6) != "allow(") continue;
      rest.remove_prefix(6);
      const std::size_t close = rest.find(')');
      if (close == std::string_view::npos) {
        s.malformed = true;
        s.error = "unclosed rule id";
        out.push_back(std::move(s));
        continue;
      }
      s.rule = std::string(rest.substr(0, close));
      rest.remove_prefix(close + 1);
      if (!known_rule(s.rule)) {
        s.malformed = true;
        s.error = "unknown rule id '" + s.rule + "'";
        out.push_back(std::move(s));
        continue;
      }
      if (rest.substr(0, 1) != ":") {
        s.malformed = true;
        s.error = "missing ': reason' after allow(" + s.rule + ")";
        out.push_back(std::move(s));
        continue;
      }
      rest.remove_prefix(1);
      // Reason: up to end of line within the comment text.
      const std::size_t eol = rest.find('\n');
      std::string reason(rest.substr(0, eol));
      // Trim whitespace and a trailing block-comment close.
      const std::size_t star = reason.rfind("*/");
      if (star != std::string::npos) reason.resize(star);
      while (!reason.empty() && (reason.back() == ' ' || reason.back() == '\t'))
        reason.pop_back();
      while (!reason.empty() &&
             (reason.front() == ' ' || reason.front() == '\t'))
        reason.erase(reason.begin());
      if (reason.empty()) {
        s.malformed = true;
        s.error = "suppression for " + s.rule + " carries no reason";
        out.push_back(std::move(s));
        continue;
      }
      s.reason = std::move(reason);
      out.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace csca::analyze
