#include "analyze/report.h"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace csca::analyze {
namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void canonicalize(Report& r) {
  std::sort(r.findings.begin(), r.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.rule, a.message) <
                     std::tie(b.path, b.line, b.rule, b.message);
            });
  std::sort(r.suppressed.begin(), r.suppressed.end(),
            [](const Suppressed& a, const Suppressed& b) {
              return std::tie(a.path, a.line, a.rule, a.reason) <
                     std::tie(b.path, b.line, b.rule, b.reason);
            });
}

std::string to_json(const Report& r) {
  std::string out;
  out += "{\n  \"tool\": \"csca_analyze\",\n  \"roots\": [";
  for (std::size_t i = 0; i < r.roots.size(); ++i) {
    if (i > 0) out += ", ";
    append_json_string(out, r.roots[i]);
  }
  out += "],\n  \"files_scanned\": " + std::to_string(r.files_scanned);
  out += ",\n  \"finding_count\": " + std::to_string(r.findings.size());
  out += ",\n  \"suppressed_count\": " + std::to_string(r.suppressed.size());
  out += ",\n  \"findings\": [";
  for (std::size_t i = 0; i < r.findings.size(); ++i) {
    const Finding& f = r.findings[i];
    out += i > 0 ? ",\n    " : "\n    ";
    out += "{\"rule\": ";
    append_json_string(out, f.rule);
    out += ", \"path\": ";
    append_json_string(out, f.path);
    out += ", \"line\": " + std::to_string(f.line) + ", \"message\": ";
    append_json_string(out, f.message);
    out += "}";
  }
  out += r.findings.empty() ? "]" : "\n  ]";
  out += ",\n  \"suppressed\": [";
  for (std::size_t i = 0; i < r.suppressed.size(); ++i) {
    const Suppressed& s = r.suppressed[i];
    out += i > 0 ? ",\n    " : "\n    ";
    out += "{\"rule\": ";
    append_json_string(out, s.rule);
    out += ", \"path\": ";
    append_json_string(out, s.path);
    out += ", \"line\": " + std::to_string(s.line) + ", \"reason\": ";
    append_json_string(out, s.reason);
    out += "}";
  }
  out += r.suppressed.empty() ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

std::string to_text(const Report& r) {
  std::ostringstream out;
  for (const Finding& f : r.findings) {
    out << f.path << ":" << f.line << ": " << f.rule << ": " << f.message
        << "\n";
  }
  out << "csca_analyze: " << r.findings.size() << " finding"
      << (r.findings.size() == 1 ? "" : "s") << " (" << r.suppressed.size()
      << " suppressed) across " << r.files_scanned << " files\n";
  return out.str();
}

}  // namespace csca::analyze
