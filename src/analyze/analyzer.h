// Tree scanning and suppression application for the static analyzer.
//
// analyze() walks the requested roots under the repo root, classifies
// each source file by its repo-relative path (which decides rule
// scope; see rules.h FileCtx), runs the rules, applies inline
// suppressions, and returns a canonically sorted Report. Directory
// iteration order is discarded — files are sorted by relative path
// before scanning — so the report is byte-identical regardless of
// filesystem enumeration order.
#pragma once

#include <string>
#include <vector>

#include "analyze/report.h"
#include "analyze/rules.h"

namespace csca::analyze {

struct AnalyzerConfig {
  /// Repo root all roots and reported paths are relative to.
  std::string repo_root = ".";
  /// Directories (or single files) to scan, relative to repo_root.
  std::vector<std::string> roots;
};

/// File extensions scanned: .h .hpp .cpp .cc .cxx
bool scannable_file(const std::string& path);

/// Rule-scope classification from a repo-relative path. Exposed for
/// the scope tests in tests/analyze/.
FileCtx classify_path(const std::string& rel_path);

/// Scans one in-memory file (fixture tests use this directly). The
/// returned findings are suppression-filtered; suppressed hits land in
/// `suppressed`, malformed directives come back as SUP-1 findings.
void analyze_source(const FileCtx& scope, const std::string& text,
                    std::vector<Finding>& findings,
                    std::vector<Suppressed>& suppressed);

/// Scans the tree. Throws std::runtime_error on unreadable roots.
Report analyze(const AnalyzerConfig& cfg);

}  // namespace csca::analyze
