#include "analyze/analyzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace csca::analyze {
namespace fs = std::filesystem;

namespace {

bool starts_with(const std::string& s, std::string_view prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    throw std::runtime_error("csca_analyze: cannot read " + p.string());
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

}  // namespace

bool scannable_file(const std::string& path) {
  for (std::string_view ext : {".h", ".hpp", ".cpp", ".cc", ".cxx"}) {
    if (path.size() > ext.size() &&
        path.compare(path.size() - ext.size(), ext.size(), ext) == 0) {
      return true;
    }
  }
  return false;
}

FileCtx classify_path(const std::string& rel_path) {
  FileCtx ctx;
  ctx.path = rel_path;
  // Simulation-visible code: everything whose iteration/choice order
  // can reach message order or a published measurement — the engines,
  // fault layer, parallel harness, checker, every protocol family, and
  // the sweep harness (byte-identical JSON at any --jobs).
  for (std::string_view d :
       {"src/sim/", "src/fault/", "src/par/", "src/check/", "src/conn/",
        "src/control/", "src/core/", "src/mst/", "src/spt/", "src/sync/",
        "src/partition/", "src/graph/", "src/bench_harness/"}) {
    if (starts_with(rel_path, d)) ctx.sim_visible = true;
  }
  // bench/ binaries measure wall-clock throughput by design.
  ctx.bench_timing = starts_with(rel_path, "bench/");
  // util/ owns the one raw engine behind the keyed Rng API.
  ctx.rng_home = starts_with(rel_path, "src/util/");
  // The engine charging sites: the only places RunStats counters and
  // ControlMeter::billed may be written. Everything else goes through
  // these (or carries a reasoned COST-2 annotation).
  for (std::string_view f :
       {"src/sim/message.h", "src/sim/network.cpp",
        "src/sim/sync_engine.cpp", "src/par/shard_engine.cpp",
        "src/par/timewarp_engine.cpp",
        "src/fault/reliable_link.cpp", "src/fault/sync_reliable_link.cpp"}) {
    if (rel_path == f) ctx.ledger_accessor = true;
  }
  return ctx;
}

void analyze_source(const FileCtx& scope, const std::string& text,
                    std::vector<Finding>& findings,
                    std::vector<Suppressed>& suppressed) {
  const std::vector<Token> toks = lex(text);
  const std::vector<Token> code = strip_comments(toks);
  FileCtx ctx = scope;
  ctx.code = &code;

  std::vector<Finding> raw;
  run_rules(ctx, raw);

  // (rule, line) -> reason, where a directive on line L covers findings
  // on L (trailing comment) and L + 1 (comment-above style).
  std::map<std::pair<std::string, int>, std::string> allow;
  for (const Suppression& s : parse_suppressions(toks)) {
    if (s.malformed) {
      findings.push_back(
          Finding{"SUP-1", scope.path, s.line,
                  "malformed suppression: " + s.error +
                      " (expected 'csca-analyze: allow(RULE-ID): reason')"});
      continue;
    }
    allow[{s.rule, s.line}] = s.reason;
    allow.insert({{s.rule, s.line + 1}, s.reason});
  }

  for (Finding& f : raw) {
    const auto it = allow.find({f.rule, f.line});
    if (it != allow.end()) {
      suppressed.push_back(
          Suppressed{f.rule, f.path, f.line, it->second});
    } else {
      findings.push_back(std::move(f));
    }
  }
}

Report analyze(const AnalyzerConfig& cfg) {
  Report report;
  report.roots = cfg.roots;

  const fs::path base(cfg.repo_root);
  std::vector<std::string> files;
  for (const std::string& root : cfg.roots) {
    const fs::path p = base / root;
    if (fs::is_regular_file(p)) {
      if (scannable_file(root)) files.push_back(root);
      continue;
    }
    if (!fs::is_directory(p)) {
      throw std::runtime_error("csca_analyze: no such file or directory: " +
                               p.string());
    }
    for (const auto& entry : fs::recursive_directory_iterator(p)) {
      if (!entry.is_regular_file()) continue;
      std::string rel =
          fs::relative(entry.path(), base).generic_string();
      if (scannable_file(rel)) files.push_back(std::move(rel));
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  for (const std::string& rel : files) {
    const std::string text = read_file(base / rel);
    analyze_source(classify_path(rel), text, report.findings,
                   report.suppressed);
    ++report.files_scanned;
  }
  canonicalize(report);
  return report;
}

}  // namespace csca::analyze
