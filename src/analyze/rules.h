// The rule set of the determinism & cost-accounting analyzer.
//
// Each rule guards one load-bearing repo contract (docs/analysis.md
// maps every rule to the PR that established the contract it protects):
//
//   DET-1  no range-iteration over std::unordered_map/set in
//          simulation-visible code — hash order is
//          implementation-defined, and one loop that feeds message
//          order breaks the ShardEngine/RunPool bit-identity matrix.
//   DET-2  no rand()/std::random_device/wall-clock reads outside the
//          bench-timing allowlist — ambient entropy breaks replay.
//   DET-3  no pointer values as comparator/ordering keys — allocator
//          addresses differ run to run even when everything else is
//          deterministic.
//   DET-4  RNG construction routes through the keyed Rng stream API
//          (util/rng.h); raw std engines outside util/ bypass
//          split()/derive_stream_seed and re-couple sibling streams.
//   COST-1 every send-like call site names an explicit MsgClass, and
//          no send-like signature defaults its billing argument — a
//          silent kAlgorithm default is how wrapper overhead leaks
//          into the wrong side of the paper's ledger split.
//   COST-2 ledger/meter fields (RunStats counters, ControlMeter::
//          billed) are mutated only at their engine accessor sites —
//          scattered writes would unmoor the golden ledgers and the
//          B1–B3 budget invariants from the engines' charging rule.
//   SCALE-1 no per-element heap allocation inside loops in
//          simulation-visible code — a `new`/make_unique/make_shared
//          per node or per event defeats the pooled-arena memory model
//          (sim/process_store.h) that the million-node capacity target
//          (docs/scale.md) rests on. Bounded per-shard/per-run loops
//          are the intended suppression case.
//   SUP-1  (meta) every suppression names a known rule and carries a
//          non-empty reason.
//
// Rules are token-pattern checks over lexer.h output — deliberately
// AST-free; see lexer.h. False positives are expected to be rare and
// are silenced in place with a reasoned annotation (shown here for
// DET-1; any rule id works) on the flagged line or the line directly
// above it:
//
//   // csca-analyze: allow(DET-1): drained through a sorted copy below
#pragma once

#include <string_view>
#include <vector>

#include "analyze/lexer.h"
#include "analyze/report.h"

namespace csca::analyze {

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// All rules, in id order.
const std::vector<RuleInfo>& rule_table();

/// True iff `id` names a rule in rule_table().
bool known_rule(std::string_view id);

/// Per-file input to the rules. The path-derived scope flags are
/// computed by analyzer.cpp from the repo layout; fixture tests set
/// them directly.
struct FileCtx {
  std::string path;  ///< repo-relative, forward slashes
  const std::vector<Token>* code = nullptr;  ///< comment-stripped tokens

  bool sim_visible = false;      ///< DET-1 applies (sim/fault/par/check/
                                 ///< protocol/bench_harness dirs)
  bool bench_timing = false;     ///< DET-2 exempt (bench/ wall-clock)
  bool rng_home = false;         ///< DET-4 exempt (util/ owns raw engines)
  bool ledger_accessor = false;  ///< COST-2 exempt (engine charging sites)
};

/// Runs every code rule over the file, appending findings (suppressions
/// are applied later by the analyzer).
void run_rules(const FileCtx& ctx, std::vector<Finding>& out);

/// One parsed `csca-analyze:` directive from a comment token.
struct Suppression {
  std::string rule;
  int line = 0;         ///< line of the comment; covers this line + next
  std::string reason;
  bool malformed = false;  ///< bad syntax, unknown rule, or empty reason
  std::string error;       ///< why, when malformed
};

/// Extracts all suppression directives from a file's token stream
/// (comment tokens only). Malformed directives are returned flagged;
/// the analyzer reports them as SUP-1 findings.
std::vector<Suppression> parse_suppressions(const std::vector<Token>& toks);

}  // namespace csca::analyze
