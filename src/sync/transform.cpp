#include "sync/transform.h"

#include "graph/traversal.h"
#include "sim/sync_engine.h"

namespace csca {

// Presents the hosted protocol with the original graph and the virtual
// (divided-by-4) clock, routing its actions through the adapter.
class InSynchAdapter::VirtualCtx final : public SyncContext {
 public:
  VirtualCtx(InSynchAdapter& adapter, SyncContext& actual)
      : adapter_(&adapter), actual_(&actual) {}

  NodeId self() const override { return adapter_->self_; }
  const Graph& graph() const override { return *adapter_->original_; }
  std::int64_t pulse() const override { return actual_->pulse() / 4; }

  void send(EdgeId e, Message m, MsgClass cls) override {
    adapter_->virtual_send(*actual_, pulse(), e, std::move(m), cls);
  }

  void schedule_wakeup(std::int64_t at_pulse) override {
    adapter_->virtual_wakeup(*actual_, at_pulse);
  }

  void finish() override {
    adapter_->finished_ = true;
    actual_->finish();
  }

 private:
  InSynchAdapter* adapter_;
  SyncContext* actual_;
};

InSynchAdapter::InSynchAdapter(const Graph& original, NodeId self,
                               std::unique_ptr<SyncProcess> inner)
    : original_(&original), self_(self), inner_(std::move(inner)) {
  require(inner_ != nullptr, "adapter needs a protocol to host");
}

InSynchAdapter::Slot& InSynchAdapter::slot_at(SyncContext& ctx,
                                              std::int64_t actual_pulse) {
  ensure(actual_pulse > ctx.pulse(),
         "slots must be scheduled strictly ahead");
  auto [it, inserted] = slots_.try_emplace(actual_pulse);
  if (inserted) ctx.schedule_wakeup(actual_pulse);
  return it->second;
}

void InSynchAdapter::virtual_send(SyncContext& ctx,
                                  std::int64_t virtual_pulse, EdgeId e,
                                  Message m, MsgClass cls) {
  // Step 3: the first actual pulse divisible by the normalized weight
  // (next_w of Def. 4.7), at or after the virtual event's actual time.
  const Weight w_hat = ctx.edge_weight(e);
  const std::int64_t desired = 4 * virtual_pulse;
  const std::int64_t slot =
      ((desired + w_hat - 1) / w_hat) * w_hat;
  Message wrapped{0};
  wrapped.data.reserve(m.data.size() + 2);
  wrapped.data.push_back(virtual_pulse);
  wrapped.data.push_back(m.type);
  wrapped.data.insert(wrapped.data.end(), m.data.begin(), m.data.end());
  if (slot == ctx.pulse()) {
    ctx.send(e, std::move(wrapped), cls);
  } else {
    slot_at(ctx, slot).sends.push_back(
        DeferredSend{e, std::move(wrapped), cls});
  }
}

void InSynchAdapter::virtual_wakeup(SyncContext& ctx,
                                    std::int64_t at_virtual) {
  require(4 * at_virtual > ctx.pulse(),
          "hosted wakeup must be scheduled strictly ahead");
  slot_at(ctx, 4 * at_virtual).hosted_wakeup = true;
}

void InSynchAdapter::on_start(SyncContext& ctx) {
  VirtualCtx vctx(*this, ctx);
  inner_->on_start(vctx);
}

void InSynchAdapter::on_message(SyncContext& ctx, const Message& m) {
  // Step 2: the message arrived early (normalized weights are at most
  // the stretched schedule); buffer until pi's processing time
  // P = 4 (S + w), with w the original weight.
  const std::int64_t virtual_send = m.at(0);
  const Weight w_orig =
      original_->weight(m.edge);
  Message inner_msg{static_cast<int>(m.at(1))};
  inner_msg.data.assign(m.data.begin() + 2, m.data.end());
  inner_msg.from = m.from;
  inner_msg.edge = m.edge;
  const std::int64_t processing = 4 * (virtual_send + w_orig);
  ensure(processing > ctx.pulse(),
         "arrival must precede the processing time (Lemma 4.5)");
  slot_at(ctx, processing).deliveries.push_back(std::move(inner_msg));
}

void InSynchAdapter::on_wakeup(SyncContext& ctx) {
  const auto it = slots_.find(ctx.pulse());
  if (it == slots_.end()) return;
  Slot slot = std::move(it->second);
  slots_.erase(it);
  for (DeferredSend& ds : slot.sends) {
    ensure(ctx.pulse() % ctx.edge_weight(ds.e) == 0,
           "deferred send missed its in-synch slot");
    ctx.send(ds.e, std::move(ds.msg), ds.cls);
  }
  VirtualCtx vctx(*this, ctx);
  for (Message& m : slot.deliveries) {
    ensure(ctx.pulse() % 4 == 0, "processing times are multiples of 4");
    inner_->on_message(vctx, m);
  }
  if (slot.hosted_wakeup) {
    inner_->on_wakeup(vctx);
  }
}

TransformedNetwork::TransformedNetwork(const Graph& g,
                                       const SyncFactory& factory, int k,
                                       std::unique_ptr<DelayModel> delay,
                                       std::uint64_t seed)
    : normalized_(normalized_copy(g)) {
  require(is_connected(g), "transformed run requires a connected graph");
  // Reference: pi on the exact weighted synchronous engine over G.
  SyncEngine ref(g, factory, /*enforce_in_synch=*/false);
  pi_stats_ = ref.run();
  t_pi_ = static_cast<std::int64_t>(pi_stats_.completion_time) + 1;

  const auto adapter_factory = [&g, &factory](NodeId v) {
    return std::make_unique<InSynchAdapter>(g, v, factory(v));
  };
  net_ = std::make_unique<SynchronizedNetwork>(
      normalized_, adapter_factory, SynchronizerKind::kGammaW, k,
      4 * (t_pi_ + 2), std::move(delay), seed);
}

TransformedRun TransformedNetwork::run() {
  return TransformedRun{net_->run(), t_pi_, pi_stats_};
}

}  // namespace csca
