// Clock synchronization (§3): generate a pulse train at every node such
// that pulse p at a node happens causally after all its neighbors'
// pulse p-1. The quality measure (after [ER90]) is the *pulse delay* —
// the largest time between two successive pulses at any node.
//
//   alpha* (§3.1): exchange PULSE messages with all neighbors each pulse.
//           Pulse delay Theta(W) — a heavy edge stalls both endpoints.
//   beta*  (§3.2): convergecast/broadcast over one spanning tree.
//           Pulse delay Theta(depth of the tree) >= script-D.
//   gamma* (§3.3): beta* inside every tree of a tree edge-cover
//           (Def. 3.1), alpha*-style coordination across trees. Pulse
//           delay O(d log^2 n), approaching the Omega(d) lower bound.
//
// All three are implemented as real protocols on the asynchronous engine;
// the run records per-node pulse timestamps so benches can report the
// measured pulse delay directly.
#pragma once

#include "graph/tree.h"
#include "partition/tree_edge_cover.h"
#include "sim/network.h"

namespace csca {

struct ClockSyncRun {
  RunStats stats;
  int pulses = 0;        ///< pulses each node was asked to generate
  double max_gap = 0;    ///< the measured pulse delay (max over nodes, p)
  double mean_gap = 0;   ///< average inter-pulse gap
  double total_time = 0; ///< time for all nodes to finish their train
  /// Ledger cost divided by (pulses * n): per-node-pulse communication.
  double cost_per_pulse = 0;
  /// pulse_times[v][p] = simulated time node v generated pulse p + 1.
  std::vector<std::vector<double>> pulse_times;
  /// max over edges of messages carried — per pulse, this measures the
  /// congestion gamma* pays for trees sharing an edge (Def. 3.1 bounds
  /// the sharing by O(log n)).
  std::int64_t max_edge_messages = 0;
};

/// Synchronizer alpha*: direct neighbor exchange. Requires pulses >= 1
/// and a connected graph.
ClockSyncRun run_clock_alpha(const Graph& g, int pulses,
                             std::unique_ptr<DelayModel> delay,
                             std::uint64_t seed = 1);

/// Synchronizer beta*: convergecast + broadcast over the given spanning
/// tree (its root acts as the leader).
ClockSyncRun run_clock_beta(const Graph& g, const RootedTree& tree,
                            int pulses, std::unique_ptr<DelayModel> delay,
                            std::uint64_t seed = 1);

/// Synchronizer gamma*: beta* per tree of the edge-cover; a node fires
/// pulse p+1 once every tree containing it has completed pulse p (each
/// edge lies in a shared tree — Def. 3.1 property 3 — so this dominates
/// the causal requirement).
ClockSyncRun run_clock_gamma(const Graph& g, const TreeEdgeCover& cover,
                             int pulses, std::unique_ptr<DelayModel> delay,
                             std::uint64_t seed = 1);

}  // namespace csca
