// Small synchronous protocols used to exercise and measure the
// synchronizers (tests, benches, examples).
#pragma once

#include <map>

#include "sim/sync_process.h"

namespace csca {

/// In-synch flooding: the initiator starts a wave; every vertex records
/// the pulse at which the wave first reached it, then forwards the wave
/// on each incident edge at the next pulse divisible by that edge's
/// weight (the Def. 4.2 discipline, i.e. the next_w(t) rule of the
/// Lemma 4.5 transformation). On a normalized weighted synchronous
/// network the recorded pulses approximate single-source distances
/// within a factor < 2 per hop.
class InSynchFlood final : public SyncProcess {
 public:
  InSynchFlood(NodeId self, NodeId initiator)
      : is_initiator_(self == initiator) {}

  void on_start(SyncContext& ctx) override {
    if (is_initiator_) reach(ctx);
  }

  void on_message(SyncContext& ctx, const Message&) override {
    if (reached_at_ < 0) reach(ctx);
  }

  void on_wakeup(SyncContext& ctx) override {
    const std::int64_t p = ctx.pulse();
    auto it = pending_.find(p);
    if (it == pending_.end()) return;
    for (EdgeId e : it->second) {
      ctx.send(e, Message{0}, MsgClass::kAlgorithm);
    }
    pending_.erase(it);
  }

  /// Pulse at which the wave arrived (-1 if never; 0 at the initiator).
  std::int64_t reached_at() const { return reached_at_; }

 private:
  void reach(SyncContext& ctx) {
    reached_at_ = ctx.pulse();
    for (EdgeId e : ctx.incident()) {
      const Weight w = ctx.edge_weight(e);
      if (reached_at_ % w == 0) {
        ctx.send(e, Message{0}, MsgClass::kAlgorithm);
      } else {
        const std::int64_t at = (reached_at_ / w + 1) * w;
        auto [it, inserted] = pending_.try_emplace(at);
        it->second.push_back(e);
        if (inserted) ctx.schedule_wakeup(at);
      }
    }
    ctx.finish();
  }

  bool is_initiator_;
  std::int64_t reached_at_ = -1;
  std::map<std::int64_t, std::vector<EdgeId>> pending_;
};

}  // namespace csca
