// The cluster partition of synchronizer gamma ([Awe85a]), applied to a
// subgraph (one weight level of the normalized network, §4.2).
//
// Nodes touched by the masked edge set are partitioned into disjoint
// clusters, each with a BFS spanning tree and a leader. Growth rule: a
// cluster absorbs its next BFS layer only while the layer multiplies the
// cluster size by more than the parameter k, so every cluster tree has
// hop-depth <= log_k(n) and the number of inter-cluster (boundary) edges
// is bounded by (k - 1) n. For each pair of neighboring clusters exactly
// one deterministic *preferred edge* carries the cross-cluster safety
// handshake. This trades communication O(k n) per pulse against time
// O(log_k n) per pulse — the knobs of Lemma 4.8.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace csca {

struct GammaPartition {
  /// cluster_of[v] = cluster index, or -1 when v has no masked edges.
  std::vector<int> cluster_of;
  /// leader of each cluster (its BFS seed).
  std::vector<NodeId> leaders;
  /// parent_edge[v] = tree edge toward the leader (kNoEdge for leaders
  /// and uncovered nodes).
  std::vector<EdgeId> parent_edge;
  /// children_edges[v] = tree edges toward v's cluster children.
  std::vector<std::vector<EdgeId>> children_edges;
  /// preferred[v] = the preferred inter-cluster edges incident to v.
  std::vector<std::vector<EdgeId>> preferred;

  int cluster_count() const { return static_cast<int>(leaders.size()); }
  bool covered(NodeId v) const {
    return cluster_of[static_cast<std::size_t>(v)] != -1;
  }
};

/// Builds the partition over the subgraph formed by the edges with
/// edge_mask[e] != 0. Requires k >= 2.
GammaPartition build_gamma_partition(const Graph& g,
                                     const std::vector<char>& edge_mask,
                                     int k);

}  // namespace csca
