// Network synchronizers (§4): run a weighted synchronous protocol on an
// asynchronous weighted network.
//
// The host wraps every protocol message with its send pulse, buffers it
// at the receiver until the local pulse count reaches send_pulse + w(e)
// (the weighted synchronous arrival), and acknowledges it on physical
// arrival so the sender can detect *safety* (Def. 4.1). Pulse generation
// is driven by one of three strategies:
//
//   alpha ("clean every link every pulse"): after pulse p a node waits
//         for all its sends to be acknowledged, then announces SAFE(p)
//         to every neighbor; pulse p+1 fires when all neighbors are
//         safe. O(script-E) control cost and O(W) time per pulse — the
//         inefficiency §4.1 attributes to naive link cleaning.
//   beta: safety is convergecast over a spanning tree to a leader whose
//         GO broadcast releases the next pulse. O(tree weight) control
//         cost and O(tree depth) time per pulse.
//   gamma_w (the paper's contribution, §4.2): requires a *normalized*
//         network (power-of-two weights) and an *in-synch* protocol
//         (sends on e only at pulses divisible by w(e)). One synchronizer
//         gamma_j of [Awe85a] per weight level 2^j, run on the subgraph
//         G_j of weight-2^j edges once every 2^j pulses; pulse
//         p = 2^j (2r + 1) waits only for the levels dividing p. Heavy
//         links are "cleaned" rarely, amortizing their cost — Lemma 4.8:
//         C_p = O(k n log n), T_p = O(log_k n log n).
//
// Lemma 4.4 (correctness) is validated in tests by checking that the
// hosted protocol produces the same outputs as its reference run on the
// weighted synchronous engine, and that the algorithm-class ledger of
// the two runs is identical.
#pragma once

#include <functional>
#include <memory>

#include "graph/tree.h"
#include "sim/network.h"
#include "sim/sync_process.h"

namespace csca {

enum class SynchronizerKind { kAlpha, kBeta, kGammaW };

/// Rounds every weight up to the next power of two: the network
/// normalization of Lemma 4.5 (Def. 4.6; w <= power(w) < 2w, so
/// weighted complexities at most double).
Graph normalized_copy(const Graph& g);

/// True iff every edge weight is a power of two.
bool is_normalized(const Graph& g);

struct SynchronizerRun {
  RunStats stats;  ///< algorithm cost == the hosted protocol's c_pi;
                   ///< control cost == the synchronizer overhead
  std::int64_t max_pulse = 0;      ///< the pulse budget that was simulated
  std::int64_t pulses_executed = 0;  ///< highest pulse any node reached
  bool hosted_all_finished = false;  ///< every hosted process finish()ed
};

class SynchronizedNetwork {
 public:
  using SyncFactory = std::function<std::unique_ptr<SyncProcess>(NodeId)>;

  /// k is the gamma partition parameter (>= 2, ignored by alpha/beta).
  /// max_pulse bounds how many pulses are generated; it must be at least
  /// the hosted protocol's synchronous running time t_pi for the
  /// protocol to complete. gamma_w additionally requires is_normalized(g)
  /// and enforces the in-synch send discipline.
  SynchronizedNetwork(const Graph& g, const SyncFactory& factory,
                      SynchronizerKind kind, int k,
                      std::int64_t max_pulse,
                      std::unique_ptr<DelayModel> delay,
                      std::uint64_t seed = 1);
  ~SynchronizedNetwork();

  SynchronizerRun run();

  /// The underlying asynchronous network, exposed so drivers can step
  /// the execution manually (the §9.3 hybrid races two algorithms under
  /// a shared cost budget).
  Network& network() { return *net_; }

  /// Collects the run summary from the current network state (valid
  /// after run(), or mid-race after manual stepping).
  SynchronizerRun summarize();

  SyncProcess& hosted(NodeId v);

  template <typename T>
  T& hosted_as(NodeId v) {
    auto* p = dynamic_cast<T*>(&hosted(v));
    require(p != nullptr, "hosted process has unexpected concrete type");
    return *p;
  }

  /// A ProcessFactory minting this synchronizer's per-node hosts, for
  /// running the same hosted execution on a different engine (the
  /// sharded conservative engine in particular). Captures the shared
  /// coordination data (beta tree, gamma partitions) by shared_ptr and
  /// `factory` by value, so the closure outlives this object — but not
  /// the graph the synchronizer was built on.
  ProcessFactory host_factory(const SyncFactory& factory) const;

  /// Host-state accessors that work on any ProcessHost whose processes
  /// came from host_factory() — the parallel analog of hosted() /
  /// summarize()'s per-node reads.
  static SyncProcess& hosted_in(ProcessHost& host, NodeId v);
  static bool hosted_finished_in(ProcessHost& host, NodeId v);
  static std::int64_t pulses_executed_in(ProcessHost& host, NodeId v);

  /// Implementation detail shared between the driver and the per-node
  /// hosts (public so the hosts, internal to the .cpp, can name it).
  struct Shared;

 private:
  std::shared_ptr<Shared> shared_;
  std::unique_ptr<Network> net_;
};

}  // namespace csca
