// The protocol transformation of Lemma 4.5 (§4.3), as executable code.
//
// Given an arbitrary synchronous protocol pi written for the *exact*
// weighted synchronous network G (message on e arrives exactly w(e)
// pulses later), the adapter produces the protocol pi' that (1) runs on
// the normalized network G-hat, (2) obeys the in-synch discipline of
// Def. 4.2 — so it can be driven by synchronizer gamma_w — and (3) is
// output-identical to pi on G, with at most a constant-factor blowup in
// complexity. The paper's three steps are implemented literally:
//
//   Step 1: slow the clock by 4: pi-event at virtual pulse v happens at
//           actual pulse 4v.
//   Step 2: run on G-hat = power-of-two rounded weights (Def. 4.6);
//           messages now arrive *early* relative to pi's schedule, so
//           they are buffered until their processing time
//           P = 4 (S + w(e)), w the ORIGINAL weight.
//   Step 3: defer each send to next_w-hat(4v), the first actual pulse
//           divisible by the normalized edge weight (Def. 4.7); the
//           deferral (< w-hat) never pushes arrival past P.
//
// The hosted protocol keeps seeing the original graph G: its context
// reports original weights and a virtual clock, so *any* SyncProcess
// written for the exact model runs unchanged.
#pragma once

#include <map>
#include <memory>

#include "sim/sync_process.h"
#include "sync/synchronizer.h"

namespace csca {

class InSynchAdapter final : public SyncProcess {
 public:
  /// original: the graph pi was written for (weights used for pi's
  /// virtual clock; must outlive the adapter). The adapter itself runs
  /// on a SyncContext over normalized_copy(original).
  InSynchAdapter(const Graph& original, NodeId self,
                 std::unique_ptr<SyncProcess> inner);

  void on_start(SyncContext& ctx) override;
  void on_message(SyncContext& ctx, const Message& m) override;
  void on_wakeup(SyncContext& ctx) override;

  SyncProcess& inner() { return *inner_; }

 private:
  /// Work scheduled for one actual pulse: sends whose in-synch slot has
  /// come, deliveries whose processing time has come, and at most one
  /// hosted wakeup.
  /// A deferred hosted send, held until its in-synch slot: the wrapped
  /// message plus the ledger class the hosted protocol sent it with.
  struct DeferredSend {
    EdgeId e = kNoEdge;
    Message msg;
    MsgClass cls = MsgClass::kAlgorithm;
  };

  struct Slot {
    std::vector<DeferredSend> sends;  // wrapped messages
    std::vector<Message> deliveries;  // unwrapped, virtual
    bool hosted_wakeup = false;
  };

  class VirtualCtx;

  void virtual_send(SyncContext& ctx, std::int64_t virtual_pulse,
                    EdgeId e, Message m, MsgClass cls);
  void virtual_wakeup(SyncContext& ctx, std::int64_t at_virtual);
  Slot& slot_at(SyncContext& ctx, std::int64_t actual_pulse);

  const Graph* original_;
  NodeId self_;
  std::unique_ptr<SyncProcess> inner_;
  std::map<std::int64_t, Slot> slots_;  // keyed by actual pulse
  bool finished_ = false;
};

struct TransformedRun {
  SynchronizerRun run;
  std::int64_t t_pi = 0;  ///< pi's running time on the exact sync engine
  RunStats pi_stats;      ///< pi's own (reference) complexity
};

/// Applies Lemma 4.5 end to end: runs pi on the exact weighted
/// synchronous engine over g as the reference, then runs the transformed
/// pi' on an asynchronous normalized network under synchronizer gamma_w
/// (partition parameter k), returning the synchronized run. Access the
/// hosted pi instances through `net` for output comparison.
class TransformedNetwork {
 public:
  using SyncFactory = std::function<std::unique_ptr<SyncProcess>(NodeId)>;

  TransformedNetwork(const Graph& g, const SyncFactory& factory, int k,
                     std::unique_ptr<DelayModel> delay,
                     std::uint64_t seed = 1);

  TransformedRun run();

  /// The pi instance hosted at v (inside the adapter).
  template <typename T>
  T& inner_as(NodeId v) {
    auto& adapter = net_->hosted_as<InSynchAdapter>(v);
    auto* p = dynamic_cast<T*>(&adapter.inner());
    require(p != nullptr, "inner process has unexpected concrete type");
    return *p;
  }

 private:
  Graph normalized_;
  std::int64_t t_pi_;
  RunStats pi_stats_;
  std::unique_ptr<SynchronizedNetwork> net_;
};

}  // namespace csca
