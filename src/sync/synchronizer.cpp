#include "sync/synchronizer.h"

#include <algorithm>
#include <bit>
#include <map>
#include <queue>
#include <set>

#include "graph/shortest_paths.h"
#include "graph/traversal.h"
#include "sync/gamma_partition.h"

namespace csca {

Graph normalized_copy(const Graph& g) {
  Graph out(g.node_count());
  for (const Edge& e : g.edges()) {
    out.add_edge(e.u, e.v, std::bit_ceil(static_cast<std::uint64_t>(e.w)));
  }
  return out;
}

bool is_normalized(const Graph& g) {
  for (const Edge& e : g.edges()) {
    if ((e.w & (e.w - 1)) != 0) return false;
  }
  return true;
}

// ------------------------------------------------------------ shared data
struct SynchronizedNetwork::Shared {
  const Graph* g = nullptr;
  SynchronizerKind kind = SynchronizerKind::kAlpha;
  std::int64_t max_pulse = 0;

  // beta: parent/children of the coordination tree (an SPT from node 0).
  std::vector<EdgeId> beta_parent;
  std::vector<std::vector<EdgeId>> beta_children;
  NodeId beta_root = 0;

  // gamma_w: one [Awe85a] partition per weight level 2^j present in g.
  std::vector<int> level_exp;                 // sorted distinct exponents j
  std::vector<GammaPartition> level_partition;  // parallel to level_exp

  int level_index(Weight w) const {
    const int j = std::countr_zero(static_cast<std::uint64_t>(w));
    const auto it =
        std::find(level_exp.begin(), level_exp.end(), j);
    ensure(it != level_exp.end(), "edge weight has no registered level");
    return static_cast<int>(it - level_exp.begin());
  }
};

namespace {

constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max();

// Minimum over a vector of monotone counters (kNever when empty -> the
// caller treats the other terms as binding).
std::int64_t min_counter(const std::vector<std::int64_t>& xs) {
  std::int64_t m = kNever;
  for (std::int64_t x : xs) m = std::min(m, x);
  return m;
}

// -------------------------------------------------------------- host base
class HostBase : public Process {
 public:
  HostBase(const Graph& g, NodeId self, std::unique_ptr<SyncProcess> sp,
           const SynchronizedNetwork::Shared& sh)
      : g_(&g), self_(self), hosted_(std::move(sp)), shared_(&sh) {}

  void on_start(Context& ctx) final {
    execute_pulse(ctx, 0);
    try_advance(ctx);
  }

  void on_message(Context& ctx, const Message& m) final {
    switch (m.type) {
      case kWrapped: {
        // Acknowledge on physical arrival (safety detection, §4.1) and
        // buffer until the weighted synchronous arrival pulse.
        ctx.send(m.edge, Message{kAck}, MsgClass::kControl);
        Message inner{static_cast<int>(m.at(1))};
        inner.data.assign(m.data.begin() + 2, m.data.end());
        inner.from = m.from;
        inner.edge = m.edge;
        const std::int64_t arrival = m.at(0) + g_->weight(m.edge);
        buffer_.push(Buffered{arrival, buffer_seq_++, std::move(inner)});
        try_advance(ctx);
        return;
      }
      case kAck: {
        on_ack(ctx, m.edge);
        return;
      }
      default:
        on_control(ctx, m);
    }
  }

  SyncProcess& hosted() { return *hosted_; }
  std::int64_t pulses_executed() const { return cur_pulse_; }
  bool hosted_finished() const { return hosted_finished_; }

  // Optimistic-engine snapshots: every member is a plain value except
  // the hosted protocol, which is deep-copied through
  // SyncProcess::clone_state. The concrete hosts' save_state/
  // restore_state overrides ride on these.
  HostBase(const HostBase& o)
      : g_(o.g_),
        self_(o.self_),
        hosted_(clone_hosted(o)),
        shared_(o.shared_),
        cur_pulse_(o.cur_pulse_),
        advancing_(o.advancing_),
        hosted_finished_(o.hosted_finished_),
        buffer_(o.buffer_),
        buffer_seq_(o.buffer_seq_),
        wakeups_(o.wakeups_) {}

  HostBase& operator=(const HostBase& o) {
    if (this == &o) return *this;
    g_ = o.g_;
    self_ = o.self_;
    hosted_ = clone_hosted(o);
    shared_ = o.shared_;
    cur_pulse_ = o.cur_pulse_;
    advancing_ = o.advancing_;
    hosted_finished_ = o.hosted_finished_;
    buffer_ = o.buffer_;
    buffer_seq_ = o.buffer_seq_;
    wakeups_ = o.wakeups_;
    return *this;
  }

 protected:
  enum BaseMsg { kWrapped = 0, kAck = 1 };

  // Strategy hooks.
  virtual void after_pulse(Context& ctx, std::int64_t p) = 0;
  virtual bool can_execute(std::int64_t p) const = 0;
  /// Next pulse this strategy must execute after cur (kNever if none).
  virtual std::int64_t next_scheduled_pulse(std::int64_t cur) const = 0;
  virtual void on_control(Context& ctx, const Message& m) = 0;
  virtual void on_send_counted(EdgeId e) = 0;
  virtual void on_ack(Context& ctx, EdgeId e) = 0;

  const Graph& graph() const { return *g_; }
  NodeId self() const { return self_; }
  std::int64_t cur_pulse() const { return cur_pulse_; }
  const SynchronizedNetwork::Shared& shared() const { return *shared_; }

  /// Neighbor slot of an incident edge (index into graph().incident()).
  std::size_t edge_slot(EdgeId e) const {
    const auto edges = g_->incident(self_);
    const auto it = std::find(edges.begin(), edges.end(), e);
    ensure(it != edges.end(), "edge is not incident to this node");
    return static_cast<std::size_t>(it - edges.begin());
  }

  void try_advance(Context& ctx) {
    if (advancing_) return;  // avoid re-entrant double execution
    advancing_ = true;
    while (true) {
      std::int64_t p = next_scheduled_pulse(cur_pulse_);
      if (!buffer_.empty()) p = std::min(p, buffer_.top().arrival);
      const auto wake = wakeups_.upper_bound(cur_pulse_);
      if (wake != wakeups_.end()) p = std::min(p, *wake);
      if (p == kNever || p > shared_->max_pulse || !can_execute(p)) break;
      execute_pulse(ctx, p);
    }
    advancing_ = false;
  }

 private:
  struct Buffered {
    std::int64_t arrival;
    std::uint64_t seq;
    Message msg;
    bool operator>(const Buffered& o) const {
      return std::tie(arrival, seq) > std::tie(o.arrival, o.seq);
    }
  };

  class HostCtx final : public SyncContext {
   public:
    HostCtx(HostBase& host, Context& net) : host_(&host), net_(&net) {}
    NodeId self() const override { return host_->self_; }
    const Graph& graph() const override { return *host_->g_; }
    std::int64_t pulse() const override { return host_->cur_pulse_; }
    void send(EdgeId e, Message m, MsgClass cls) override {
      host_->sync_send(*net_, e, std::move(m), cls);
    }
    void schedule_wakeup(std::int64_t at_pulse) override {
      require(at_pulse > host_->cur_pulse_,
              "wakeup must be scheduled strictly ahead");
      host_->wakeups_.insert(at_pulse);
    }
    void finish() override { host_->hosted_finished_ = true; }

   private:
    HostBase* host_;
    Context* net_;
  };

  void sync_send(Context& ctx, EdgeId e, Message m, MsgClass cls) {
    const Weight w = g_->weight(e);
    if (shared_->kind == SynchronizerKind::kGammaW) {
      require(cur_pulse_ % w == 0,
              "gamma_w hosts in-synch protocols only: sends on e must "
              "happen at pulses divisible by w(e)");
    }
    Message wrapped{kWrapped};
    wrapped.data.reserve(m.data.size() + 2);
    wrapped.data.push_back(cur_pulse_);
    wrapped.data.push_back(m.type);
    wrapped.data.insert(wrapped.data.end(), m.data.begin(), m.data.end());
    // The hosted protocol's class carries through the wrapper: hosted
    // kControl overhead (e.g. a pulse-domain ARQ layer) stays control
    // traffic on the asynchronous ledger too.
    ctx.send(e, std::move(wrapped), cls);
    on_send_counted(e);
  }

  void execute_pulse(Context& ctx, std::int64_t p) {
    ensure(p == 0 || p > cur_pulse_, "pulses must advance");
    cur_pulse_ = p;
    HostCtx hctx(*this, ctx);
    if (p == 0) {
      hosted_->on_start(hctx);
    } else {
      while (!buffer_.empty() && buffer_.top().arrival <= p) {
        ensure(buffer_.top().arrival == p,
               "a buffered message missed its arrival pulse");
        Message msg = buffer_.top().msg;
        buffer_.pop();
        hosted_->on_message(hctx, msg);
      }
      const auto wake = wakeups_.find(p);
      if (wake != wakeups_.end()) {
        wakeups_.erase(wake);
        hosted_->on_wakeup(hctx);
      }
    }
    after_pulse(ctx, p);
  }

  static std::unique_ptr<SyncProcess> clone_hosted(const HostBase& o) {
    auto p = o.hosted_->clone_state();
    require(p != nullptr,
            "hosted protocol does not implement clone_state, so its host "
            "cannot be snapshotted for optimistic execution");
    return p;
  }

  const Graph* g_;
  NodeId self_;
  std::unique_ptr<SyncProcess> hosted_;
  const SynchronizedNetwork::Shared* shared_;

  std::int64_t cur_pulse_ = 0;
  bool advancing_ = false;
  bool hosted_finished_ = false;
  std::priority_queue<Buffered, std::vector<Buffered>, std::greater<>>
      buffer_;
  std::uint64_t buffer_seq_ = 0;
  std::set<std::int64_t> wakeups_;
};

// ----------------------------------------------------------- alpha host
class AlphaHost final : public HostBase {
 public:
  AlphaHost(const Graph& g, NodeId self, std::unique_ptr<SyncProcess> sp,
            const SynchronizedNetwork::Shared& sh)
      : HostBase(g, self, std::move(sp), sh),
        neighbor_safe_(static_cast<std::size_t>(g.degree(self)), -1) {}

  std::unique_ptr<Process> save_state() const override {
    return std::make_unique<AlphaHost>(*this);
  }
  void restore_state(const Process& saved) override {
    *this = dynamic_cast<const AlphaHost&>(saved);
  }

 protected:
  enum Msg { kSafe = 10 };

  void after_pulse(Context& ctx, std::int64_t p) override {
    executed_ = p;
    maybe_announce(ctx);
  }

  bool can_execute(std::int64_t p) const override {
    return min_counter(neighbor_safe_) >= p - 1;
  }

  std::int64_t next_scheduled_pulse(std::int64_t cur) const override {
    // alpha must emit SAFE for every pulse: no skipping.
    return cur + 1;
  }

  void on_send_counted(EdgeId) override { ++unacked_; }

  void on_ack(Context& ctx, EdgeId) override {
    ensure(--unacked_ >= 0, "ack without a matching send");
    maybe_announce(ctx);
  }

  void on_control(Context& ctx, const Message& m) override {
    ensure(m.type == kSafe, "alpha host: unexpected control message");
    auto& slot = neighbor_safe_[edge_slot(m.edge)];
    slot = std::max(slot, m.at(0));
    try_advance(ctx);
  }

 private:
  void maybe_announce(Context& ctx) {
    if (unacked_ > 0 || announced_ >= executed_) return;
    announced_ = executed_;
    for (EdgeId e : graph().incident(self())) {
      ctx.send(e, Message{kSafe, {announced_}}, MsgClass::kControl);
    }
  }

  std::vector<std::int64_t> neighbor_safe_;
  std::int64_t executed_ = -1;
  std::int64_t announced_ = -1;
  int unacked_ = 0;
};

// ------------------------------------------------------------ beta host
class BetaHost final : public HostBase {
 public:
  BetaHost(const Graph& g, NodeId self, std::unique_ptr<SyncProcess> sp,
           const SynchronizedNetwork::Shared& sh)
      : HostBase(g, self, std::move(sp), sh) {
    parent_ = sh.beta_parent[static_cast<std::size_t>(self)];
    children_ = sh.beta_children[static_cast<std::size_t>(self)];
    child_done_.assign(children_.size(), -1);
    is_root_ = self == sh.beta_root;
  }

  std::unique_ptr<Process> save_state() const override {
    return std::make_unique<BetaHost>(*this);
  }
  void restore_state(const Process& saved) override {
    *this = dynamic_cast<const BetaHost&>(saved);
  }

 protected:
  enum Msg { kDone = 10, kGo = 11 };

  void after_pulse(Context& ctx, std::int64_t p) override {
    executed_ = p;
    if (unacked_ == 0) self_safe_ = p;
    try_report(ctx);
  }

  bool can_execute(std::int64_t p) const override { return go_ >= p; }

  std::int64_t next_scheduled_pulse(std::int64_t cur) const override {
    return cur + 1;
  }

  void on_send_counted(EdgeId) override { ++unacked_; }

  void on_ack(Context& ctx, EdgeId) override {
    ensure(--unacked_ >= 0, "ack without a matching send");
    if (unacked_ == 0) {
      self_safe_ = executed_;
      try_report(ctx);
    }
  }

  void on_control(Context& ctx, const Message& m) override {
    switch (m.type) {
      case kDone: {
        const std::size_t slot = child_slot(m.edge);
        child_done_[slot] = std::max(child_done_[slot], m.at(0));
        try_report(ctx);
        return;
      }
      case kGo: {
        go_ = std::max(go_, m.at(0));
        for (EdgeId e : children_) {
          ctx.send(e, Message{kGo, {go_}}, MsgClass::kControl);
        }
        try_advance(ctx);
        return;
      }
    }
    ensure(false, "beta host: unexpected control message");
  }

 private:
  std::size_t child_slot(EdgeId e) const {
    const auto it = std::find(children_.begin(), children_.end(), e);
    ensure(it != children_.end(), "kDone arrived on a non-child edge");
    return static_cast<std::size_t>(it - children_.begin());
  }

  void try_report(Context& ctx) {
    const std::int64_t done =
        std::min(self_safe_, min_counter(child_done_));
    if (done <= reported_) return;
    reported_ = done;
    if (is_root_) {
      go_ = std::max(go_, done + 1);
      for (EdgeId e : children_) {
        ctx.send(e, Message{kGo, {go_}}, MsgClass::kControl);
      }
      try_advance(ctx);
    } else {
      ctx.send(parent_, Message{kDone, {done}}, MsgClass::kControl);
    }
  }

  bool is_root_ = false;
  EdgeId parent_ = kNoEdge;
  std::vector<EdgeId> children_;
  std::vector<std::int64_t> child_done_;
  std::int64_t executed_ = -1;
  std::int64_t self_safe_ = -1;
  std::int64_t reported_ = -1;
  std::int64_t go_ = 0;
  int unacked_ = 0;
};

// --------------------------------------------------------- gamma_w host
class GammaWHost final : public HostBase {
 public:
  GammaWHost(const Graph& g, NodeId self, std::unique_ptr<SyncProcess> sp,
             const SynchronizedNetwork::Shared& sh)
      : HostBase(g, self, std::move(sp), sh) {
    levels_.resize(sh.level_exp.size());
    for (std::size_t i = 0; i < sh.level_exp.size(); ++i) {
      Level& lvl = levels_[i];
      lvl.j = sh.level_exp[i];
      const GammaPartition& part = sh.level_partition[i];
      lvl.active = part.covered(self);
      if (!lvl.active) continue;
      lvl.leader =
          part.leaders[static_cast<std::size_t>(
              part.cluster_of[static_cast<std::size_t>(self)])] == self;
      lvl.parent = part.parent_edge[static_cast<std::size_t>(self)];
      lvl.children = part.children_edges[static_cast<std::size_t>(self)];
      lvl.preferred = part.preferred[static_cast<std::size_t>(self)];
      lvl.child_safe.assign(lvl.children.size(), -1);
      lvl.child_ready.assign(lvl.children.size(), -1);
      lvl.pref_safe.assign(lvl.preferred.size(), -1);
    }
  }

  std::unique_ptr<Process> save_state() const override {
    return std::make_unique<GammaWHost>(*this);
  }
  void restore_state(const Process& saved) override {
    *this = dynamic_cast<const GammaWHost&>(saved);
  }

 protected:
  enum Msg { kSafe = 10, kCSafe = 11, kPSafe = 12, kReady = 13, kGo = 14 };

  void after_pulse(Context& ctx, std::int64_t p) override {
    for (Level& lvl : levels_) {
      if (!lvl.active || p % (Weight{1} << lvl.j) != 0) continue;
      lvl.exec_super = p >> lvl.j;
      if (lvl.unacked == 0) {
        lvl.safe = lvl.exec_super;
        try_report_safe(ctx, lvl);
      }
    }
  }

  bool can_execute(std::int64_t p) const override {
    for (const Level& lvl : levels_) {
      if (!lvl.active || p % (Weight{1} << lvl.j) != 0) continue;
      if (lvl.go < (p >> lvl.j)) return false;
    }
    return true;
  }

  std::int64_t next_scheduled_pulse(std::int64_t cur) const override {
    std::int64_t next = kNever;
    for (const Level& lvl : levels_) {
      if (!lvl.active) continue;
      const std::int64_t step = std::int64_t{1} << lvl.j;
      next = std::min(next, (cur / step + 1) * step);
    }
    return next;
  }

  void on_send_counted(EdgeId e) override {
    ++level_of(e).unacked;
  }

  void on_ack(Context& ctx, EdgeId e) override {
    Level& lvl = level_of(e);
    ensure(--lvl.unacked >= 0, "ack without a matching send");
    if (lvl.unacked == 0) {
      lvl.safe = lvl.exec_super;
      try_report_safe(ctx, lvl);
    }
  }

  void on_control(Context& ctx, const Message& m) override {
    Level& lvl = levels_[static_cast<std::size_t>(level_slot(
        static_cast<int>(m.at(0))))];
    const std::int64_t s = m.at(1);
    switch (m.type) {
      case kSafe: {
        auto& c = lvl.child_safe[slot_of(lvl.children, m.edge)];
        c = std::max(c, s);
        try_report_safe(ctx, lvl);
        return;
      }
      case kCSafe: {
        broadcast(ctx, lvl, kCSafe, s);
        handle_cluster_safe(ctx, lvl, s);
        return;
      }
      case kPSafe: {
        auto& c = lvl.pref_safe[slot_of(lvl.preferred, m.edge)];
        c = std::max(c, s);
        try_ready(ctx, lvl);
        return;
      }
      case kReady: {
        auto& c = lvl.child_ready[slot_of(lvl.children, m.edge)];
        c = std::max(c, s);
        try_ready(ctx, lvl);
        return;
      }
      case kGo: {
        lvl.go = std::max(lvl.go, s);
        broadcast(ctx, lvl, kGo, lvl.go);
        try_advance(ctx);
        return;
      }
    }
    ensure(false, "gamma_w host: unexpected control message");
  }

 private:
  struct Level {
    int j = 0;
    bool active = false;
    bool leader = false;
    EdgeId parent = kNoEdge;
    std::vector<EdgeId> children;
    std::vector<EdgeId> preferred;

    int unacked = 0;
    std::int64_t exec_super = 0;  // super-pulse last executed
    std::int64_t safe = -1;       // self safe through this super-pulse
    std::vector<std::int64_t> child_safe;
    std::int64_t reported_safe = -1;
    std::int64_t cluster_safe = -1;
    std::vector<std::int64_t> pref_safe;
    std::vector<std::int64_t> child_ready;
    std::int64_t reported_ready = -1;
    std::int64_t go = 0;  // pulses up to go * 2^j are cleared
  };

  int level_slot(int j) const {
    for (std::size_t i = 0; i < levels_.size(); ++i) {
      if (levels_[i].j == j) return static_cast<int>(i);
    }
    ensure(false, "control message for an unknown level");
    return 0;
  }

  Level& level_of(EdgeId e) {
    return levels_[static_cast<std::size_t>(
        shared().level_index(graph().weight(e)))];
  }

  static std::size_t slot_of(const std::vector<EdgeId>& edges, EdgeId e) {
    const auto it = std::find(edges.begin(), edges.end(), e);
    ensure(it != edges.end(), "message arrived on an unexpected edge");
    return static_cast<std::size_t>(it - edges.begin());
  }

  void broadcast(Context& ctx, const Level& lvl, int type,
                 std::int64_t s) {
    for (EdgeId e : lvl.children) {
      ctx.send(e, Message{type, {lvl.j, s}}, MsgClass::kControl);
    }
  }

  void try_report_safe(Context& ctx, Level& lvl) {
    if (!lvl.active) return;
    const std::int64_t s =
        std::min(lvl.safe, min_counter(lvl.child_safe));
    if (s <= lvl.reported_safe) return;
    lvl.reported_safe = s;
    if (lvl.leader) {
      broadcast(ctx, lvl, kCSafe, s);
      handle_cluster_safe(ctx, lvl, s);
    } else {
      ctx.send(lvl.parent, Message{kSafe, {lvl.j, s}},
               MsgClass::kControl);
    }
  }

  void handle_cluster_safe(Context& ctx, Level& lvl, std::int64_t s) {
    if (s <= lvl.cluster_safe) return;
    lvl.cluster_safe = s;
    for (EdgeId e : lvl.preferred) {
      ctx.send(e, Message{kPSafe, {lvl.j, s}}, MsgClass::kControl);
    }
    try_ready(ctx, lvl);
  }

  void try_ready(Context& ctx, Level& lvl) {
    const std::int64_t s =
        std::min({lvl.cluster_safe, min_counter(lvl.pref_safe),
                  min_counter(lvl.child_ready)});
    if (s <= lvl.reported_ready) return;
    lvl.reported_ready = s;
    if (lvl.leader) {
      lvl.go = std::max(lvl.go, s + 1);
      broadcast(ctx, lvl, kGo, lvl.go);
      try_advance(ctx);
    } else {
      ctx.send(lvl.parent, Message{kReady, {lvl.j, s}},
               MsgClass::kControl);
    }
  }

  std::vector<Level> levels_;
};

}  // namespace

// ---------------------------------------------------------------- driver
SynchronizedNetwork::SynchronizedNetwork(
    const Graph& g, const SyncFactory& factory, SynchronizerKind kind,
    int k, std::int64_t max_pulse, std::unique_ptr<DelayModel> delay,
    std::uint64_t seed)
    : shared_(std::make_shared<Shared>()) {
  require(max_pulse >= 0, "max_pulse must be non-negative");
  shared_->g = &g;
  shared_->kind = kind;
  shared_->max_pulse = max_pulse;

  if (kind == SynchronizerKind::kBeta) {
    require(is_connected(g), "beta synchronizer needs a connected graph");
    const auto tree = dijkstra(g, 0).tree(g);
    shared_->beta_root = 0;
    shared_->beta_parent.assign(
        static_cast<std::size_t>(g.node_count()), kNoEdge);
    shared_->beta_children.assign(
        static_cast<std::size_t>(g.node_count()), {});
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v == 0) continue;
      const EdgeId pe = tree.parent_edge(v);
      shared_->beta_parent[static_cast<std::size_t>(v)] = pe;
      shared_->beta_children[static_cast<std::size_t>(g.other(pe, v))]
          .push_back(pe);
    }
  }

  if (kind == SynchronizerKind::kGammaW) {
    require(is_normalized(g),
            "gamma_w requires a normalized network (Lemma 4.5); apply "
            "normalized_copy first");
    require(k >= 2, "gamma partition parameter must be >= 2");
    std::map<int, std::vector<char>> level_masks;
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const int j = std::countr_zero(
          static_cast<std::uint64_t>(g.weight(e)));
      auto [it, inserted] = level_masks.try_emplace(
          j, std::vector<char>(static_cast<std::size_t>(g.edge_count()),
                               0));
      it->second[static_cast<std::size_t>(e)] = 1;
    }
    for (const auto& [j, mask] : level_masks) {
      shared_->level_exp.push_back(j);
      shared_->level_partition.push_back(
          build_gamma_partition(g, mask, k));
    }
  }

  net_ = std::make_unique<Network>(g, host_factory(factory),
                                   std::move(delay), seed);
}

ProcessFactory SynchronizedNetwork::host_factory(
    const SyncFactory& factory) const {
  std::shared_ptr<Shared> sh = shared_;
  return [sh, factory](NodeId v) -> std::unique_ptr<Process> {
    auto sp = factory(v);
    require(sp != nullptr, "sync process factory returned null");
    const Graph& g = *sh->g;
    switch (sh->kind) {
      case SynchronizerKind::kAlpha:
        return std::make_unique<AlphaHost>(g, v, std::move(sp), *sh);
      case SynchronizerKind::kBeta:
        return std::make_unique<BetaHost>(g, v, std::move(sp), *sh);
      case SynchronizerKind::kGammaW:
        return std::make_unique<GammaWHost>(g, v, std::move(sp), *sh);
    }
    ensure(false, "unreachable synchronizer kind");
    return nullptr;
  };
}

SyncProcess& SynchronizedNetwork::hosted_in(ProcessHost& host, NodeId v) {
  return dynamic_cast<HostBase&>(host.process(v)).hosted();
}

bool SynchronizedNetwork::hosted_finished_in(ProcessHost& host, NodeId v) {
  return dynamic_cast<HostBase&>(host.process(v)).hosted_finished();
}

std::int64_t SynchronizedNetwork::pulses_executed_in(ProcessHost& host,
                                                     NodeId v) {
  return dynamic_cast<HostBase&>(host.process(v)).pulses_executed();
}

SynchronizedNetwork::~SynchronizedNetwork() = default;

SynchronizerRun SynchronizedNetwork::run() {
  net_->run();
  return summarize();
}

SynchronizerRun SynchronizedNetwork::summarize() {
  SynchronizerRun out;
  out.stats = net_->stats();
  out.max_pulse = shared_->max_pulse;
  out.hosted_all_finished = true;
  for (NodeId v = 0; v < shared_->g->node_count(); ++v) {
    auto& host = dynamic_cast<HostBase&>(net_->process(v));
    out.pulses_executed =
        std::max(out.pulses_executed, host.pulses_executed());
    out.hosted_all_finished =
        out.hosted_all_finished && host.hosted_finished();
  }
  return out;
}

SyncProcess& SynchronizedNetwork::hosted(NodeId v) {
  return dynamic_cast<HostBase&>(net_->process(v)).hosted();
}

}  // namespace csca
