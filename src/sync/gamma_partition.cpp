#include "sync/gamma_partition.h"

#include <algorithm>
#include <map>
#include <queue>

namespace csca {

GammaPartition build_gamma_partition(const Graph& g,
                                     const std::vector<char>& edge_mask,
                                     int k) {
  require(k >= 2, "gamma partition requires k >= 2");
  require(edge_mask.size() == static_cast<std::size_t>(g.edge_count()),
          "edge mask size must equal edge count");

  const auto n = static_cast<std::size_t>(g.node_count());
  GammaPartition out;
  out.cluster_of.assign(n, -1);
  out.parent_edge.assign(n, kNoEdge);
  out.children_edges.assign(n, {});
  out.preferred.assign(n, {});

  std::vector<char> in_subgraph(n, 0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (!edge_mask[static_cast<std::size_t>(e)]) continue;
    in_subgraph[static_cast<std::size_t>(g.edge(e).u)] = 1;
    in_subgraph[static_cast<std::size_t>(g.edge(e).v)] = 1;
  }

  for (NodeId seed = 0; seed < g.node_count(); ++seed) {
    if (!in_subgraph[static_cast<std::size_t>(seed)] ||
        out.covered(seed)) {
      continue;
    }
    const int cluster = out.cluster_count();
    out.leaders.push_back(seed);
    out.cluster_of[static_cast<std::size_t>(seed)] = cluster;

    // BFS layer growth: absorb the next layer only while it multiplies
    // the cluster size by more than k.
    std::vector<NodeId> cluster_nodes{seed};
    std::vector<NodeId> frontier{seed};
    // Tentative parents for the next layer, committed only on absorb.
    while (!frontier.empty()) {
      std::vector<std::pair<NodeId, EdgeId>> next;  // (node, parent edge)
      std::vector<char> seen(n, 0);
      for (NodeId v : frontier) {
        for (const Arc a : g.neighbors(v)) {
          if (!edge_mask[static_cast<std::size_t>(a.edge)]) continue;
          const NodeId u = a.node;
          if (out.covered(u) || seen[static_cast<std::size_t>(u)]) {
            continue;
          }
          seen[static_cast<std::size_t>(u)] = 1;
          next.emplace_back(u, a.edge);
        }
      }
      if (next.empty() ||
          next.size() <= static_cast<std::size_t>(k - 1) *
                             cluster_nodes.size()) {
        break;  // growth stalled: freeze the cluster here
      }
      frontier.clear();
      for (const auto& [u, e] : next) {
        out.cluster_of[static_cast<std::size_t>(u)] = cluster;
        out.parent_edge[static_cast<std::size_t>(u)] = e;
        out.children_edges[static_cast<std::size_t>(g.other(e, u))]
            .push_back(e);
        cluster_nodes.push_back(u);
        frontier.push_back(u);
      }
    }
  }

  // One preferred edge per neighboring cluster pair: the smallest edge
  // id connecting them. Ordered map as a determinism proof sketch
  // (DET-1, docs/analysis.md): the fill loop below iterates it, and
  // (cluster, cluster) keys make that walk — and hence each node's
  // preferred-edge list order — a pure function of the graph.
  std::map<std::pair<int, int>, EdgeId> preferred;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (!edge_mask[static_cast<std::size_t>(e)]) continue;
    const Edge& ed = g.edge(e);
    const int cu = out.cluster_of[static_cast<std::size_t>(ed.u)];
    const int cv = out.cluster_of[static_cast<std::size_t>(ed.v)];
    ensure(cu != -1 && cv != -1, "masked edge endpoints must be covered");
    if (cu == cv) continue;
    const auto key = std::minmax(cu, cv);
    const auto [it, inserted] =
        preferred.try_emplace({key.first, key.second}, e);
    if (!inserted && e < it->second) it->second = e;
  }
  for (const auto& [pair, e] : preferred) {
    out.preferred[static_cast<std::size_t>(g.edge(e).u)].push_back(e);
    out.preferred[static_cast<std::size_t>(g.edge(e).v)].push_back(e);
  }
  return out;
}

}  // namespace csca
