#include "sync/clock_sync.h"

#include <algorithm>

#include "graph/traversal.h"

namespace csca {

namespace {

// Shared bookkeeping: pulse timestamps and the finish rule.
class ClockBase : public Process {
 public:
  explicit ClockBase(int target) : target_(target) {}
  const std::vector<double>& pulse_times() const { return pulse_times_; }

 protected:
  /// Records pulse generation; returns false once the train is complete.
  bool record_pulse(Context& ctx) {
    pulse_times_.push_back(ctx.now());
    if (static_cast<int>(pulse_times_.size()) >= target_) {
      ctx.finish();
      return false;
    }
    return true;
  }
  int current_pulse() const {
    return static_cast<int>(pulse_times_.size());
  }
  bool train_done() const {
    return static_cast<int>(pulse_times_.size()) >= target_;
  }

 private:
  int target_;
  std::vector<double> pulse_times_;
};

// ---------------------------------------------------------------- alpha*
class AlphaClock final : public ClockBase {
 public:
  AlphaClock(const Graph& g, NodeId self, int target)
      : ClockBase(target),
        recv_(static_cast<std::size_t>(g.degree(self)), 0) {}

  void on_start(Context& ctx) override { generate(ctx); }

  void on_message(Context& ctx, const Message& m) override {
    // recv_[i] = highest pulse heard from the neighbor on incident edge i.
    const auto edges = ctx.incident();
    const auto it = std::find(edges.begin(), edges.end(), m.edge);
    recv_[static_cast<std::size_t>(it - edges.begin())] =
        std::max<std::int64_t>(
            recv_[static_cast<std::size_t>(it - edges.begin())], m.at(0));
    try_generate(ctx);
  }

 private:
  void try_generate(Context& ctx) {
    if (train_done()) return;
    const auto p = current_pulse();  // next pulse to generate is p + 1
    for (std::int64_t r : recv_) {
      if (r < p) return;
    }
    generate(ctx);
  }

  void generate(Context& ctx) {
    const bool more = record_pulse(ctx);
    const std::int64_t p = current_pulse();
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {p}}, MsgClass::kAlgorithm);
    }
    if (more) try_generate(ctx);  // degree-0 safety (n == 1)
  }

  std::vector<std::int64_t> recv_;
};

// ----------------------------------------------------------------- beta*
class BetaClock final : public ClockBase {
 public:
  enum MsgType { kDone = 0, kGo = 1 };

  BetaClock(const Graph& g, const RootedTree& tree, NodeId self,
            int target)
      : ClockBase(target), is_root_(tree.root() == self) {
    require(tree.spanning(), "beta* needs a spanning tree");
    if (!is_root_) parent_edge_ = tree.parent_edge(self);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v == tree.root()) continue;
      const EdgeId pe = tree.parent_edge(v);
      if (g.other(pe, v) == self) children_edges_.push_back(pe);
    }
  }

  void on_start(Context& ctx) override {
    generate(ctx);  // pulse 1 fires everywhere at time 0
  }

  void on_message(Context& ctx, const Message& m) override {
    switch (static_cast<MsgType>(m.type)) {
      case kDone: {
        ++done_count_;
        try_report(ctx);
        return;
      }
      case kGo: {
        for (EdgeId e : children_edges_) {
          ctx.send(e, Message{kGo}, MsgClass::kAlgorithm);
        }
        generate(ctx);
        return;
      }
    }
  }

 private:
  void generate(Context& ctx) {
    if (!record_pulse(ctx)) return;
    done_count_ = 0;
    reported_ = false;
    try_report(ctx);
  }

  void try_report(Context& ctx) {
    if (reported_ || train_done()) return;
    if (done_count_ < static_cast<int>(children_edges_.size())) return;
    reported_ = true;
    if (is_root_) {
      for (EdgeId e : children_edges_) {
        ctx.send(e, Message{kGo}, MsgClass::kAlgorithm);
      }
      generate(ctx);
    } else {
      ctx.send(parent_edge_, Message{kDone}, MsgClass::kAlgorithm);
    }
  }

  bool is_root_;
  EdgeId parent_edge_ = kNoEdge;
  std::vector<EdgeId> children_edges_;
  int done_count_ = 0;
  bool reported_ = false;
};

// ---------------------------------------------------------------- gamma*
//
// Trees progress at different speeds, so a fast subtree may report pulse
// p for one tree while this node still waits on pulse p-1 of another.
// All progress is therefore tracked with monotone per-child / per-tree
// pulse counters instead of per-round reset counts.
class GammaClock final : public ClockBase {
 public:
  enum MsgType { kDone = 0, kTreeDone = 1 };

  GammaClock(const Graph& g, const TreeEdgeCover& cover, NodeId self,
             int target)
      : ClockBase(target) {
    for (int t = 0; t < cover.size(); ++t) {
      const CoverTree& ct = cover.trees[static_cast<std::size_t>(t)];
      if (!ct.tree.contains(self)) continue;
      Membership m;
      m.tree_index = t;
      m.is_leader = ct.leader == self;
      if (!m.is_leader) m.parent_edge = ct.tree.parent_edge(self);
      for (NodeId v : ct.cluster) {
        if (v == ct.leader) continue;
        const EdgeId pe = ct.tree.parent_edge(v);
        if (g.other(pe, v) == self) m.children_edges.push_back(pe);
      }
      m.child_done.assign(m.children_edges.size(), 0);
      memberships_.push_back(std::move(m));
    }
    require(!memberships_.empty() || g.degree(self) == 0,
            "every non-isolated node must belong to some cover tree");
  }

  void on_start(Context& ctx) override { generate(ctx); }

  void on_message(Context& ctx, const Message& m) override {
    Membership& mem = membership(static_cast<int>(m.at(0)));
    switch (static_cast<MsgType>(m.type)) {
      case kDone: {
        // A child's subtree has completed pulse m.at(1) in this tree.
        const std::size_t slot = child_slot(mem, m.edge);
        mem.child_done[slot] =
            std::max(mem.child_done[slot], m.at(1));
        try_report(ctx, mem);
        return;
      }
      case kTreeDone: {
        for (EdgeId e : mem.children_edges) {
          ctx.send(e, Message{kTreeDone, {m.at(0), m.at(1)}}, MsgClass::kAlgorithm);
        }
        mem.tree_done = std::max(mem.tree_done, m.at(1));
        try_generate(ctx);
        return;
      }
    }
  }

 private:
  struct Membership {
    int tree_index = -1;
    bool is_leader = false;
    EdgeId parent_edge = kNoEdge;
    std::vector<EdgeId> children_edges;
    std::vector<std::int64_t> child_done;  // highest pulse per child
    std::int64_t reported = 0;   // highest pulse sent up / declared
    std::int64_t tree_done = 0;  // highest TREE_DONE pulse seen
  };

  Membership& membership(int tree_index) {
    for (Membership& m : memberships_) {
      if (m.tree_index == tree_index) return m;
    }
    ensure(false, "message for a tree this node does not belong to");
    return memberships_.front();
  }

  static std::size_t child_slot(const Membership& mem, EdgeId e) {
    for (std::size_t i = 0; i < mem.children_edges.size(); ++i) {
      if (mem.children_edges[i] == e) return i;
    }
    ensure(false, "kDone arrived on a non-child edge");
    return 0;
  }

  void generate(Context& ctx) {
    if (!record_pulse(ctx)) return;
    for (Membership& m : memberships_) {
      try_report(ctx, m);
    }
    try_generate(ctx);  // isolated-node / single-member-tree safety
  }

  void try_report(Context& ctx, Membership& mem) {
    const std::int64_t p = current_pulse();
    if (mem.reported >= p || train_done()) return;
    for (std::int64_t c : mem.child_done) {
      if (c < p) return;
    }
    mem.reported = p;
    if (mem.is_leader) {
      for (EdgeId e : mem.children_edges) {
        ctx.send(e, Message{kTreeDone, {mem.tree_index, p}}, MsgClass::kAlgorithm);
      }
      mem.tree_done = std::max(mem.tree_done, p);
      try_generate(ctx);
    } else {
      ctx.send(mem.parent_edge, Message{kDone, {mem.tree_index, p}}, MsgClass::kAlgorithm);
    }
  }

  void try_generate(Context& ctx) {
    if (train_done()) return;
    const std::int64_t p = current_pulse();
    for (const Membership& m : memberships_) {
      if (m.tree_done < p) return;
    }
    generate(ctx);
  }

  std::vector<Membership> memberships_;
};

// ---------------------------------------------------------------- driver
template <typename MakeProcess>
ClockSyncRun run_clock(const Graph& g, int pulses,
                       std::unique_ptr<DelayModel> delay,
                       std::uint64_t seed, const MakeProcess& make) {
  require(pulses >= 1, "at least one pulse required");
  require(is_connected(g), "clock synchronization needs a connected graph");
  Network net(g, make, std::move(delay), seed);
  ClockSyncRun out;
  out.stats = net.run();
  out.pulses = pulses;
  double max_gap = 0;
  double gap_sum = 0;
  std::int64_t gap_count = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto& times =
        dynamic_cast<const ClockBase&>(net.process(v)).pulse_times();
    ensure(static_cast<int>(times.size()) == pulses,
           "every node must complete its pulse train");
    for (std::size_t i = 1; i < times.size(); ++i) {
      const double gap = times[i] - times[i - 1];
      max_gap = std::max(max_gap, gap);
      gap_sum += gap;
      ++gap_count;
    }
    out.total_time = std::max(out.total_time, times.back());
  }
  out.max_gap = max_gap;
  out.mean_gap = gap_count > 0 ? gap_sum / static_cast<double>(gap_count)
                               : 0.0;
  out.cost_per_pulse =
      static_cast<double>(out.stats.total_cost()) /
      (static_cast<double>(pulses) * static_cast<double>(g.node_count()));
  out.pulse_times.reserve(static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out.pulse_times.push_back(
        dynamic_cast<const ClockBase&>(net.process(v)).pulse_times());
  }
  // The gamma* congestion measure counts the clock protocol's own
  // traffic; control-class overhead from any transformer sharing the
  // network must not leak into the per-link sharing bound.
  out.max_edge_messages = net.max_edge_message_count(MsgClass::kAlgorithm);
  return out;
}

}  // namespace

ClockSyncRun run_clock_alpha(const Graph& g, int pulses,
                             std::unique_ptr<DelayModel> delay,
                             std::uint64_t seed) {
  return run_clock(g, pulses, std::move(delay), seed, [&](NodeId v) {
    return std::make_unique<AlphaClock>(g, v, pulses);
  });
}

ClockSyncRun run_clock_beta(const Graph& g, const RootedTree& tree,
                            int pulses, std::unique_ptr<DelayModel> delay,
                            std::uint64_t seed) {
  return run_clock(g, pulses, std::move(delay), seed, [&](NodeId v) {
    return std::make_unique<BetaClock>(g, tree, v, pulses);
  });
}

ClockSyncRun run_clock_gamma(const Graph& g, const TreeEdgeCover& cover,
                             int pulses, std::unique_ptr<DelayModel> delay,
                             std::uint64_t seed) {
  return run_clock(g, pulses, std::move(delay), seed, [&](NodeId v) {
    return std::make_unique<GammaClock>(g, cover, v, pulses);
  });
}

}  // namespace csca
