#include "control/restabilize.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "fault/fault_injector.h"
#include "graph/mst.h"
#include "graph/shortest_paths.h"
#include "graph/traversal.h"
#include "mst/ghs.h"
#include "sim/delay.h"
#include "sim/network.h"
#include "spt/recur.h"

namespace csca {

namespace {

constexpr int kProbe = 81001;
constexpr int kProbeAck = 81002;

// Broadcast-echo dirty probe (classic PIF): the root floods kProbe;
// every node, on first receipt, adopts the probe edge as parent and
// forwards on its remaining edges; each non-parent edge owes exactly
// one response (a crossing probe or an ack), and once a node has them
// all it acks its parent. Exactly two messages traverse every edge, so
// the probe's cost is exactly 2 * W(G) — the per-epoch detection term
// of the recovery envelope.
class ProbeProcess final : public Process {
 public:
  ProbeProcess(NodeId self, NodeId root) : self_(self), root_(root) {}

  void on_start(Context& ctx) override {
    if (self_ != root_) return;
    probed_ = true;
    needed_ = static_cast<int>(ctx.incident().size());
    // The probe's class is nominal: the driver runs it under
    // set_recovery_billing(true), which remaps every send to kRecovery.
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{kProbe}, MsgClass::kAlgorithm);
    }
    if (needed_ == 0) finish(ctx);
  }

  void on_message(Context& ctx, const Message& m) override {
    if (done_) return;
    if (m.type == kProbe && !probed_) {
      probed_ = true;
      parent_ = m.edge;
      needed_ = static_cast<int>(ctx.incident().size()) - 1;
      for (EdgeId e : ctx.incident()) {
        if (e != parent_) ctx.send(e, Message{kProbe}, MsgClass::kAlgorithm);
      }
      if (needed_ == 0) finish(ctx);
      return;
    }
    // A crossing probe or an ack — either way, one non-parent edge
    // reported back.
    ++replies_;
    if (probed_ && replies_ == needed_) finish(ctx);
  }

  bool done() const { return done_; }

  std::unique_ptr<Process> save_state() const override {
    return std::make_unique<ProbeProcess>(*this);
  }
  void restore_state(const Process& saved) override {
    *this = dynamic_cast<const ProbeProcess&>(saved);
  }

 private:
  void finish(Context& ctx) {
    done_ = true;
    if (self_ != root_) {
      ctx.send(parent_, Message{kProbeAck}, MsgClass::kAlgorithm);
    }
    ctx.finish();
  }

  NodeId self_;
  NodeId root_;
  EdgeId parent_ = kNoEdge;
  int needed_ = 0;
  int replies_ = 0;
  bool probed_ = false;
  bool done_ = false;
};

// The report's cumulative RunStats is a carrier summing the finished
// slices' already-charged ledgers, not a live ledger.
void merge_stats(RunStats& into, const RunStats& slice) {
  // csca-analyze: allow(COST-2): report carrier summing finished slice ledgers
  into.algorithm_messages += slice.algorithm_messages;
  // csca-analyze: allow(COST-2): report carrier summing finished slice ledgers
  into.control_messages += slice.control_messages;
  // csca-analyze: allow(COST-2): report carrier summing finished slice ledgers
  into.recovery_messages += slice.recovery_messages;
  // csca-analyze: allow(COST-2): report carrier summing finished slice ledgers
  into.algorithm_cost += slice.algorithm_cost;
  // csca-analyze: allow(COST-2): report carrier summing finished slice ledgers
  into.control_cost += slice.control_cost;
  // csca-analyze: allow(COST-2): report carrier summing finished slice ledgers
  into.recovery_cost += slice.recovery_cost;
  into.events += slice.events;
  into.completion_time += slice.completion_time;
}

// One protocol slice on the current weights: build the structure from
// scratch on a fresh engine. `recovery` bills every message of the
// slice to MsgClass::kRecovery (re-stabilization); the initial
// construction runs with it off.
struct SliceResult {
  RunStats stats;
  std::vector<char> in_tree;   // kMst
  std::vector<Weight> dist;    // kSpt
};

SliceResult run_slice(const Graph& g, const RestabilizeOptions& opts,
                      const FaultInjector* inj, bool recovery,
                      std::uint64_t slice_seed) {
  SliceResult out;
  ProcessFactory factory;
  if (opts.subject == RestabilizeSubject::kMst) {
    factory = [&g](NodeId v) {
      return std::make_unique<GhsProcess>(g, v, GhsMode::kSerialScan);
    };
  } else {
    const Weight tau = std::max<Weight>(1, g.max_weight());
    const NodeId root = opts.root;
    factory = [&g, root, tau](NodeId v) {
      return std::make_unique<SptRecurProcess>(g, v, root, tau);
    };
  }
  Network net(g, factory, std::make_unique<ExactDelay>(), slice_seed);
  if (inj != nullptr) net.set_faults(inj);
  net.set_recovery_billing(recovery);
  out.stats = net.run(opts.max_time_per_slice);
  if (opts.subject == RestabilizeSubject::kMst) {
    out.in_tree.assign(static_cast<std::size_t>(g.edge_count()), 0);
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      if (net.process_as<GhsProcess>(g.edge(e).u).branch(e)) {
        out.in_tree[static_cast<std::size_t>(e)] = 1;
      }
    }
  } else {
    out.dist.reserve(static_cast<std::size_t>(g.node_count()));
    for (NodeId v = 0; v < g.node_count(); ++v) {
      out.dist.push_back(net.process_as<SptRecurProcess>(v).dist());
    }
  }
  return out;
}

// The epoch's detection sweep, billed entirely to kRecovery.
RunStats run_probe(const Graph& g, const RestabilizeOptions& opts,
                   const FaultInjector* inj, std::uint64_t slice_seed) {
  const NodeId root = opts.root;
  Network net(
      g, [root](NodeId v) { return std::make_unique<ProbeProcess>(v, root); },
      std::make_unique<ExactDelay>(), slice_seed);
  if (inj != nullptr) net.set_faults(inj);
  net.set_recovery_billing(true);
  return net.run(opts.max_time_per_slice);
}

std::int64_t check_structure(const Graph& g, const RestabilizeOptions& opts,
                             const SliceResult& live) {
  return opts.subject == RestabilizeSubject::kMst
             ? mst_cycle_violations(g, live.in_tree)
             : spt_route_violations(g, opts.root, live.dist);
}

}  // namespace

RestabilizeReport run_restabilizing(const Graph& g,
                                    const RestabilizeOptions& opts) {
  require(g.node_count() >= 2, "restabilizing run needs n >= 2");
  require(is_connected(g), "restabilizing run requires a connected graph");
  g.check_node(opts.root);
  opts.churn.validate(g);
  for (const ChurnEpoch& ep : opts.churn.epochs) {
    require(ep.edges_down.empty() && ep.edges_up.empty() &&
                ep.leaves.empty() && ep.joins.empty(),
            "restabilizing runs take weight-redraw churn only; liveness "
            "churn composes through the FaultInjector engine path");
  }

  // Work on a private copy: epochs re-draw its weights in place.
  Graph work = g;
  RestabilizeReport report;

  // Message-rate faults keep their keyed streams per slice; each slice
  // derives its own sub-seed so fates differ across slices the way
  // independent runs would.
  const auto make_injector =
      [&](std::uint64_t slice_seed) -> std::unique_ptr<FaultInjector> {
    if (!opts.faults.active()) return nullptr;
    return std::make_unique<FaultInjector>(opts.faults, work, slice_seed);
  };

  std::uint64_t slice_seed = opts.seed;
  auto inj = make_injector(slice_seed);
  SliceResult live =
      run_slice(work, opts, inj.get(), /*recovery=*/false, slice_seed);
  merge_stats(report.total, live.stats);

  for (std::size_t k = 0; k < opts.churn.epochs.size(); ++k) {
    const ChurnEpoch& ep = opts.churn.epochs[k];
    EpochReport er;
    er.at = ep.at;
    er.changed_edges = apply_churn_weights(opts.churn, k, opts.seed, work);

    slice_seed = derive_stream_seed(opts.seed, 0xE70C + k);
    inj = make_injector(slice_seed);

    // Detection: the dirty probe is recovery traffic even when the
    // structure turns out to still be valid — churn made it necessary.
    const RunStats probe = run_probe(work, opts, inj.get(), slice_seed);
    merge_stats(report.total, probe);
    // csca-analyze: allow(COST-2): epoch report carrier copying a finished ledger
    er.recovery_messages += probe.recovery_messages;
    // csca-analyze: allow(COST-2): epoch report carrier copying a finished ledger
    er.recovery_cost += probe.recovery_cost;

    er.violations = check_structure(work, opts, live);
    if (er.violations > 0) {
      er.restabilized = true;
      ++report.restabilizations;
      const std::uint64_t rs = derive_stream_seed(slice_seed, 0x5AB1);
      auto rinj = make_injector(rs);
      live = run_slice(work, opts, rinj.get(), /*recovery=*/true, rs);
      merge_stats(report.total, live.stats);
      // csca-analyze: allow(COST-2): epoch report carrier copying a finished ledger
      er.recovery_messages += live.stats.recovery_messages;
      // csca-analyze: allow(COST-2): epoch report carrier copying a finished ledger
      er.recovery_cost += live.stats.recovery_cost;
    }
    report.epochs.push_back(er);
  }

  report.final_valid = check_structure(work, opts, live) == 0;
  return report;
}

}  // namespace csca
