// The §5 controller (after the MAIN CONTROLLER of [AAPS87]).
//
// Every message the controlled protocol sends consumes w(e) units of an
// abstract resource that must be authorized by permits. Permits originate
// at the initiator (the root of the dynamically growing execution tree),
// which caps total issuance at a *threshold* set to the protocol's known
// correct-execution complexity c_pi: correct executions are never
// interfered with, while a protocol that diverges (bad inputs, faults) is
// cut off after O(threshold) spending.
//
// Permit traffic follows [AAPS87]'s aggregation idea: a vertex that runs
// dry requests a geometrically growing batch (covering its queued need,
// growing with what it has already consumed), requests climb the
// execution tree until an ancestor with enough cached permits (or the
// root) fills them, and grants retrace the path. A vertex that spends b
// units issues O(log b) requests, giving the Corollary 5.1 overhead
// O(c_pi log^2 c_pi) in communication and time.
//
// Accounting note (the paper's "approximate permit counter"): batches are
// capped by consumption, so total issuance is at most twice total
// consumption. Set the threshold to 2 c_pi for the aggregating
// controller (correct executions then never suspend, runaways are cut
// off within O(c_pi)); the naive controller issues exactly what is
// consumed, so its threshold is c_pi itself.
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "control/diffusing.h"
#include "sim/network.h"

namespace csca {

class FaultInjector;

/// Optional run environment for the controller drivers: fault injection
/// plus an extra process layer (e.g. fault/reliable_link.h's
/// arq_factory) between the controller hosts and the wire.
struct RunEnv {
  /// Attached to the Network before the run (Network::set_faults); the
  /// injector must stay alive for the duration of the run. nullptr or
  /// an inactive injector leaves the engine on its fault-free path.
  const FaultInjector* faults = nullptr;
  /// Wraps the host factory (outermost layer wins the wire). Used to
  /// slide the ARQ layer under the controller: wrap = arq_factory.
  std::function<ProcessFactory(ProcessFactory)> wrap;
  /// Inverse of wrap for post-run reads: maps the network's outermost
  /// process back to the controller host it wraps (e.g. the ArqHost's
  /// inner()). Required when wrap is set; identity when empty.
  std::function<Process&(Process&)> unwrap;
  /// Shared control-cost meter closing the admission loop under faults:
  /// pass the same meter here and in the ArqConfig of the wrap layer,
  /// and the root treats the ARQ layer's billed cost (retransmits,
  /// ACKs, control-frame first copies) as implicitly issued permits —
  /// permits_issued then upper-bounds the run's *total* billed cost,
  /// and a retransmit storm exhausts the budget instead of silently
  /// bypassing it. Null keeps the PR-5 logical-sends-only behaviour.
  std::shared_ptr<ControlMeter> meter;
};

struct ControllerConfig {
  ControllerConfig() = default;
  // The meter defaults off, so the many {threshold, aggregate} call
  // sites predating it stay valid (and warning-free) as written.
  ControllerConfig(Weight threshold_in, bool aggregate_in,
                   std::shared_ptr<ControlMeter> meter_in = nullptr)
      : threshold(threshold_in),
        aggregate(aggregate_in),
        meter(std::move(meter_in)) {}

  /// Root permit budget; set to (an upper bound on) c_pi.
  Weight threshold = 0;
  /// If false, every request asks for exactly the queued need and goes
  /// all the way to the root — the "naive controller" of §5, for
  /// comparison benches.
  bool aggregate = true;
  /// Control-cost meter read by the root's admission rule (normally
  /// threaded from RunEnv::meter by run_controlled). When set, a
  /// request is refused once explicit issuance plus metered control
  /// cost would cross the threshold, and permits_issued() reports
  /// their sum.
  std::shared_ptr<ControlMeter> meter;
};

struct ControlledRun {
  RunStats stats;  ///< algorithm = protocol messages, control = permits
  /// The root refused further permits, or (with a RunEnv::meter)
  /// metered control overhead overran the threshold after the last
  /// request — either way the budget bound was hit.
  bool exhausted = false;
  /// Explicit permits issued by the root plus, with a meter attached,
  /// the metered control cost (implicit permits). Upper-bounds the
  /// ledger's total billed cost when the meter covers all control
  /// traffic (wrap = ARQ with the same meter).
  Weight permits_issued = 0;
  /// Keeps the simulation alive so inner protocol outputs stay readable.
  std::shared_ptr<Network> network;
  /// RunEnv::unwrap of the run that produced this, so inner() can see
  /// through any extra process layer.
  std::function<Process&(Process&)> unwrap;

  /// The inner protocol instance at v (for reading outputs).
  DiffusingProcess& inner(NodeId v) const;
};

using DiffusingFactory =
    std::function<std::unique_ptr<DiffusingProcess>(NodeId)>;

/// Snapshot of a controller host's admission state. Only the
/// initiator's host issues permits, so the root's view carries the
/// run-level budget signals (the fields ControlledRun publishes).
struct ControllerView {
  bool exhausted = false;
  Weight permits_issued = 0;
};

/// The host factory run_controlled drives its Network with, exposed so
/// the parallel engines can run the same controller stack. The hosts
/// implement save_state/restore_state by cloning the inner protocol
/// (DiffusingProcess::clone_state), which is what lets the optimistic
/// Time Warp backend roll a controller vertex back.
ProcessFactory controller_host_factory(const Graph& g,
                                       const DiffusingFactory& factory,
                                       NodeId initiator,
                                       const ControllerConfig& config);

/// Reads the admission state of a host built by
/// controller_host_factory (meaningful at the initiator). Throws if
/// `host` is not such a host.
ControllerView controller_view(const Process& host);

/// Runs the protocol bare (no metering); the baseline c_pi measurement.
/// max_time bounds runaway protocols.
ControlledRun run_uncontrolled(
    const Graph& g, const DiffusingFactory& factory, NodeId initiator,
    std::unique_ptr<DelayModel> delay, std::uint64_t seed = 1,
    double max_time = std::numeric_limits<double>::infinity(),
    const RunEnv& env = {});

/// Runs the protocol under the controller. The returned stats ledger
/// separates protocol cost (algorithm) from permit traffic (control).
ControlledRun run_controlled(const Graph& g,
                             const DiffusingFactory& factory,
                             NodeId initiator,
                             const ControllerConfig& config,
                             std::unique_ptr<DelayModel> delay,
                             std::uint64_t seed = 1,
                             const RunEnv& env = {});

}  // namespace csca
