// The §5 controller (after the MAIN CONTROLLER of [AAPS87]).
//
// Every message the controlled protocol sends consumes w(e) units of an
// abstract resource that must be authorized by permits. Permits originate
// at the initiator (the root of the dynamically growing execution tree),
// which caps total issuance at a *threshold* set to the protocol's known
// correct-execution complexity c_pi: correct executions are never
// interfered with, while a protocol that diverges (bad inputs, faults) is
// cut off after O(threshold) spending.
//
// Permit traffic follows [AAPS87]'s aggregation idea: a vertex that runs
// dry requests a geometrically growing batch (covering its queued need,
// growing with what it has already consumed), requests climb the
// execution tree until an ancestor with enough cached permits (or the
// root) fills them, and grants retrace the path. A vertex that spends b
// units issues O(log b) requests, giving the Corollary 5.1 overhead
// O(c_pi log^2 c_pi) in communication and time.
//
// Accounting note (the paper's "approximate permit counter"): batches are
// capped by consumption, so total issuance is at most twice total
// consumption. Set the threshold to 2 c_pi for the aggregating
// controller (correct executions then never suspend, runaways are cut
// off within O(c_pi)); the naive controller issues exactly what is
// consumed, so its threshold is c_pi itself.
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "control/diffusing.h"
#include "sim/network.h"

namespace csca {

struct ControllerConfig {
  /// Root permit budget; set to (an upper bound on) c_pi.
  Weight threshold = 0;
  /// If false, every request asks for exactly the queued need and goes
  /// all the way to the root — the "naive controller" of §5, for
  /// comparison benches.
  bool aggregate = true;
};

struct ControlledRun {
  RunStats stats;  ///< algorithm = protocol messages, control = permits
  bool exhausted = false;   ///< the root refused further permits
  Weight permits_issued = 0;
  /// Keeps the simulation alive so inner protocol outputs stay readable.
  std::shared_ptr<Network> network;

  /// The inner protocol instance at v (for reading outputs).
  DiffusingProcess& inner(NodeId v) const;
};

using DiffusingFactory =
    std::function<std::unique_ptr<DiffusingProcess>(NodeId)>;

/// Runs the protocol bare (no metering); the baseline c_pi measurement.
/// max_time bounds runaway protocols.
ControlledRun run_uncontrolled(
    const Graph& g, const DiffusingFactory& factory, NodeId initiator,
    std::unique_ptr<DelayModel> delay, std::uint64_t seed = 1,
    double max_time = std::numeric_limits<double>::infinity());

/// Runs the protocol under the controller. The returned stats ledger
/// separates protocol cost (algorithm) from permit traffic (control).
ControlledRun run_controlled(const Graph& g,
                             const DiffusingFactory& factory,
                             NodeId initiator,
                             const ControllerConfig& config,
                             std::unique_ptr<DelayModel> delay,
                             std::uint64_t seed = 1);

}  // namespace csca
