// Diffusing computations ([DS80], the §5 model): a protocol started at a
// single initiator, where every other vertex enters the computation by
// receiving a message. Protocols written against this interface can run
// either bare (PassthroughHost) or under the §5 controller, which
// meters every send against a permit budget.
#pragma once

#include <memory>

#include "graph/graph.h"
#include "sim/message.h"

namespace csca {

class DiffusingContext {
 public:
  virtual ~DiffusingContext() = default;

  virtual NodeId self() const = 0;
  virtual const Graph& graph() const = 0;
  virtual double now() const = 0;

  /// Sends m over incident edge e, consuming w(e) resource units (§5:
  /// "a transmission of a message on an edge e is a request to consume
  /// w(e) units of the resource"). Under a controller the send may be
  /// delayed until permits arrive, or dropped entirely once the root
  /// threshold is exhausted.
  /// `cls` picks the ledger side the (possibly delayed) transmission is
  /// billed to, threaded through the controller's permit machinery to
  /// the underlying network send (COST-1: never defaulted).
  virtual void send(EdgeId e, Message m, MsgClass cls) = 0;

  virtual void finish() = 0;

  std::span<const EdgeId> incident() const {
    return graph().incident(self());
  }
  NodeId neighbor(EdgeId e) const { return graph().other(e, self()); }
  Weight edge_weight(EdgeId e) const { return graph().weight(e); }
};

class DiffusingProcess {
 public:
  virtual ~DiffusingProcess() = default;

  /// Invoked at the initiator only, at time 0.
  virtual void on_start(DiffusingContext&) {}

  virtual void on_message(DiffusingContext&, const Message& m) = 0;

  /// Deep copy for optimistic-engine state saving: controller hosts
  /// running under the Time Warp backend clone their inner protocol
  /// when they snapshot themselves. Default: unsupported (null).
  virtual std::unique_ptr<DiffusingProcess> clone_state() const {
    return nullptr;
  }
};

}  // namespace csca
