// Self-stabilizing recovery under dynamic topology churn.
//
// A RestabilizingRun executes a structure-building protocol (GHS MST or
// the recursive SPT) to quiescence, then walks the ChurnPlan epoch by
// epoch. At each epoch it:
//
//   1. applies the epoch's keyed weight re-draws to its working copy of
//      the graph (apply_churn_weights; the support graph is fixed, so
//      only weights move between run slices — see fault/churn_plan.h);
//   2. runs a broadcast-echo *dirty probe* over the live topology,
//      billed to MsgClass::kRecovery: the distributed detection sweep
//      that tells every node an epoch boundary passed and collects the
//      echo wave back at the root (cost Theta(sum of edge weights),
//      the term the recovery envelope charges per epoch);
//   3. decides validity of the *live* structure with the centralized
//      certificate check — the KKP-style cycle-property rule
//      (mst_cycle_violations) for MST subjects, the route-consistency
//      rule (spt_route_violations) for SPT — exactly the predicates a
//      distributed verifier decides, evaluated on the claimed
//      structure the previous slice left behind;
//   4. when the structure is invalidated, re-executes the protocol on
//      the re-weighted graph with Network::set_recovery_billing(true),
//      so every message of the recovery run lands in the kRecovery
//      ledger class, and adopts the rebuilt structure as the new live
//      state.
//
// The cumulative ledger therefore separates the initial construction
// (algorithm/control) from everything churn made necessary (recovery),
// which is what the churn bench table's envelope bound is checked
// against: per epoch, recovery cost <= probe envelope + (structure
// invalidated ? re-execution envelope : 0).
//
// Fault plans compose: the same FaultPlan is materialized against every
// slice (message-rate faults keep their keyed streams; crash/outage
// schedules apply within each slice's own clock). Sequential-engine
// only — the cross-engine churn determinism matrix exercises the
// injector path instead (tests/fault/churn_determinism_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "fault/churn_plan.h"
#include "fault/fault_plan.h"
#include "graph/graph.h"
#include "sim/message.h"

namespace csca {

enum class RestabilizeSubject {
  kMst,  ///< GHS; live state = branch edge set, checked by cycle rule
  kSpt,  ///< recursive SPT; live state = distance vector, route rule
};

struct RestabilizeOptions {
  RestabilizeSubject subject = RestabilizeSubject::kMst;
  ChurnPlan churn;
  /// Composed message/crash/outage (and byzantine) faults; applied to
  /// every slice, inactive by default.
  FaultPlan faults;
  std::uint64_t seed = 1;
  /// SPT source / probe root.
  NodeId root = 0;
  /// Wall-clock cap per slice, for runs faults may keep from quiescing.
  double max_time_per_slice = 1e9;
};

/// One churn epoch's recovery accounting.
struct EpochReport {
  double at = 0;                ///< the epoch's scheduled virtual time
  int changed_edges = 0;        ///< weight re-draws applied
  std::int64_t violations = 0;  ///< certificate violations detected
  bool restabilized = false;    ///< protocol re-executed this epoch
  /// Recovery-class traffic of this epoch (dirty probe, plus the
  /// re-execution when the structure was invalidated).
  std::int64_t recovery_messages = 0;
  Weight recovery_cost = 0;
};

struct RestabilizeReport {
  /// Cumulative ledger: initial run (algorithm/control) plus every
  /// epoch's probe and re-execution traffic (recovery).
  RunStats total;
  std::vector<EpochReport> epochs;
  /// The live structure passes its certificate check after the final
  /// epoch (against the final weights).
  bool final_valid = false;
  /// Epochs whose certificate check failed (== number of re-executions).
  int restabilizations = 0;
};

/// Runs `subject` under `opts.churn` on a working copy of g (the
/// caller's graph is never mutated). Requires a connected graph with
/// n >= 2 and a churn plan without edge/node liveness events (weight
/// re-draws only — liveness churn composes through the FaultInjector
/// path instead, where delivery semantics are defined).
RestabilizeReport run_restabilizing(const Graph& g,
                                    const RestabilizeOptions& opts);

}  // namespace csca
