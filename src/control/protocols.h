// Diffusing protocols used to exercise the controller (tests, benches,
// examples): a well-behaved terminating broadcast-echo and a faulty
// protocol that would run forever — the exact scenario §5's controller
// exists to contain.
#pragma once

#include "control/diffusing.h"

namespace csca {

/// Propagation of information with feedback (broadcast + echo): the
/// initiator learns when the whole graph has been covered. Correct
/// executions cost 2 messages per tree edge and 4 per non-tree edge
/// (wave + immediate echo in both directions), so c_pi <= 4 * script-E —
/// the natural controller threshold.
class BroadcastEcho final : public DiffusingProcess {
 public:
  explicit BroadcastEcho(NodeId self) : self_(self) {}

  void on_start(DiffusingContext& ctx) override {
    covered_ = true;
    expected_ = static_cast<int>(ctx.incident().size());
    if (expected_ == 0) {
      done_ = true;
      ctx.finish();
      return;
    }
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{kWave}, MsgClass::kAlgorithm);
    }
  }

  void on_message(DiffusingContext& ctx, const Message& m) override {
    if (m.type == kWave) {
      if (covered_) {
        ctx.send(m.edge, Message{kEcho}, MsgClass::kAlgorithm);
        return;
      }
      covered_ = true;
      parent_ = m.edge;
      expected_ = static_cast<int>(ctx.incident().size()) - 1;
      for (EdgeId e : ctx.incident()) {
        if (e != parent_) ctx.send(e, Message{kWave}, MsgClass::kAlgorithm);
      }
      maybe_echo(ctx);
      return;
    }
    // kEcho
    ++echoes_;
    maybe_echo(ctx);
  }

  bool covered() const { return covered_; }
  bool done() const { return done_; }

 private:
  enum { kWave = 0, kEcho = 1 };

  void maybe_echo(DiffusingContext& ctx) {
    if (echoes_ < expected_) return;
    done_ = true;
    if (parent_ != kNoEdge) {
      ctx.send(parent_, Message{kEcho}, MsgClass::kAlgorithm);
    }
    ctx.finish();
  }

  NodeId self_;
  bool covered_ = false;
  bool done_ = false;
  EdgeId parent_ = kNoEdge;
  int expected_ = 0;
  int echoes_ = 0;
};

/// A diverged protocol: every received message is answered, forever —
/// unbounded communication unless a controller suspends it.
class RunawaySpammer final : public DiffusingProcess {
 public:
  void on_start(DiffusingContext& ctx) override {
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0}, MsgClass::kAlgorithm);
    }
  }

  void on_message(DiffusingContext& ctx, const Message& m) override {
    ++received_;
    ctx.send(m.edge, Message{0}, MsgClass::kAlgorithm);
  }

  std::int64_t received() const { return received_; }

 private:
  std::int64_t received_ = 0;
};

}  // namespace csca
