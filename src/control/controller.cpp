#include "control/controller.h"

#include <algorithm>

namespace csca {

namespace {

constexpr int kWrappedTag = 1000;  // inner type is carried in data[0]
constexpr int kRequestTag = 1;     // data = [amount]
constexpr int kGrantTag = 2;       // data = [amount]

// Common shell: owns the inner protocol and adapts DiffusingContext.
class HostBase : public Process {
 public:
  HostBase(const Graph& g, NodeId self, bool is_initiator,
           std::unique_ptr<DiffusingProcess> inner)
      : g_(&g),
        self_(self),
        is_initiator_(is_initiator),
        inner_(std::move(inner)) {}

  DiffusingProcess& inner() { return *inner_; }

 protected:
  class Ctx final : public DiffusingContext {
   public:
    Ctx(HostBase& host, Context& net) : host_(&host), net_(&net) {}
    NodeId self() const override { return host_->self_; }
    const Graph& graph() const override { return *host_->g_; }
    double now() const override { return net_->now(); }
    void send(EdgeId e, Message m, MsgClass cls) override {
      host_->inner_send(*net_, e, std::move(m), cls);
    }
    void finish() override { net_->finish(); }

   private:
    HostBase* host_;
    Context* net_;
  };

  virtual void inner_send(Context& ctx, EdgeId e, Message m,
                          MsgClass cls) = 0;

  void deliver(Context& ctx, const Message& wrapped) {
    Message m{static_cast<int>(wrapped.at(0))};
    m.data.assign(wrapped.data.begin() + 1, wrapped.data.end());
    m.from = wrapped.from;
    m.edge = wrapped.edge;
    Ctx c(*this, ctx);
    inner_->on_message(c, m);
  }

  static Message wrap(const Message& m) {
    Message w{kWrappedTag};
    w.data.reserve(m.data.size() + 1);
    w.data.push_back(m.type);
    w.data.insert(w.data.end(), m.data.begin(), m.data.end());
    return w;
  }

  const Graph* g_;
  NodeId self_;
  bool is_initiator_;
  std::unique_ptr<DiffusingProcess> inner_;
};

// ------------------------------------------------------- uncontrolled
class PassthroughHost final : public HostBase {
 public:
  using HostBase::HostBase;

  void on_start(Context& ctx) override {
    if (!is_initiator_) return;
    Ctx c(*this, ctx);
    inner_->on_start(c);
  }

  void on_message(Context& ctx, const Message& m) override {
    deliver(ctx, m);
  }

 protected:
  void inner_send(Context& ctx, EdgeId e, Message m,
                  MsgClass cls) override {
    ctx.send(e, wrap(m), cls);
  }
};

// --------------------------------------------------------- controlled
class ControllerHost final : public HostBase {
 public:
  ControllerHost(const Graph& g, NodeId self, bool is_initiator,
                 std::unique_ptr<DiffusingProcess> inner,
                 const ControllerConfig& config)
      : HostBase(g, self, is_initiator, std::move(inner)),
        config_(config) {}

  bool exhausted() const { return exhausted_; }
  /// Explicit issuance plus metered control overhead: the implicit
  /// permits the ARQ layer consumed on the root's behalf.
  Weight permits_issued() const { return issued_ + overhead(); }

  // Optimistic-engine state saving: the snapshot is a full host copy
  // whose inner protocol is cloned, so restoring from it cannot alias
  // live state (a snapshot may outlive several rollbacks).
  std::unique_ptr<Process> save_state() const override {
    std::unique_ptr<DiffusingProcess> inner_copy = inner_->clone_state();
    require(inner_copy != nullptr,
            "controller rollback needs DiffusingProcess::clone_state");
    auto copy = std::make_unique<ControllerHost>(
        *g_, self_, is_initiator_, std::move(inner_copy), config_);
    copy->copy_controller_state(*this);
    return copy;
  }

  void restore_state(const Process& saved) override {
    const auto& s = dynamic_cast<const ControllerHost&>(saved);
    std::unique_ptr<DiffusingProcess> inner_copy = s.inner_->clone_state();
    require(inner_copy != nullptr,
            "controller rollback needs DiffusingProcess::clone_state");
    inner_ = std::move(inner_copy);
    copy_controller_state(s);
  }

  void on_start(Context& ctx) override {
    if (!is_initiator_) return;
    Ctx c(*this, ctx);
    inner_->on_start(c);
  }

  void on_message(Context& ctx, const Message& m) override {
    switch (m.type) {
      case kWrappedTag: {
        if (!is_initiator_ && parent_edge_ == kNoEdge) {
          parent_edge_ = m.edge;  // the execution tree grows here
        }
        deliver(ctx, m);
        return;
      }
      case kRequestTag: {
        route_request(ctx, m.at(0), m.edge);
        return;
      }
      case kGrantTag: {
        ensure(!grant_route_.empty(), "grant without a routed request");
        const EdgeId down = grant_route_.front();
        grant_route_.pop_front();
        if (down == kNoEdge) {
          accept_grant(ctx, m.at(0));
        } else {
          ctx.send(down, Message{kGrantTag, {m.at(0)}},
                   MsgClass::kControl);
        }
        return;
      }
    }
    ensure(false, "ControllerHost received a foreign message type");
  }

 protected:
  void inner_send(Context& ctx, EdgeId e, Message m,
                  MsgClass cls) override {
    const Weight w = g_->weight(e);
    if (pending_.empty() && balance_ >= w) {
      balance_ -= w;
      consumed_ += w;
      ctx.send(e, wrap(m), cls);
      return;
    }
    pending_.push_back(PendingSend{e, std::move(m), cls});
    pending_need_ += w;
    maybe_request(ctx);
  }

 private:
  void copy_controller_state(const ControllerHost& o) {
    parent_edge_ = o.parent_edge_;
    balance_ = o.balance_;
    consumed_ = o.consumed_;
    pending_ = o.pending_;
    pending_need_ = o.pending_need_;
    last_request_ = o.last_request_;
    request_outstanding_ = o.request_outstanding_;
    grant_route_ = o.grant_route_;
    issued_ = o.issued_;
    exhausted_ = o.exhausted_;
  }

  void maybe_request(Context& ctx) {
    if (request_outstanding_ || pending_.empty()) return;
    const Weight need = pending_need_ - balance_;
    ensure(need > 0, "queued sends imply an uncovered need");
    Weight amount = need;
    if (config_.aggregate) {
      // Geometric batches, capped by consumption so that total issuance
      // never exceeds twice total consumption (the paper's approximate
      // counter).
      amount = need + std::min(last_request_, consumed_);
    }
    last_request_ = amount;
    request_outstanding_ = true;
    route_request(ctx, amount, kNoEdge);
  }

  // Control-class transmission cost billed so far by the metered
  // overhead layer (zero without a meter): physical traffic the root
  // must treat as already-spent budget even though no permit request
  // ever asked for it.
  Weight overhead() const {
    return config_.meter ? config_.meter->billed : 0;
  }

  /// Handles a permit request for `amount`, arriving from `from`
  /// (kNoEdge = this vertex's own request).
  void route_request(Context& ctx, Weight amount, EdgeId from) {
    if (is_initiator_) {
      // The root's threshold is the §5 suspension rule, ARQ-aware:
      // metered control cost counts as issued, so a retransmit storm
      // eats into the budget instead of bypassing it.
      if (issued_ + overhead() + amount > config_.threshold) {
        exhausted_ = true;
        return;  // never granted: the requesting subtree suspends
      }
      issued_ += amount;
      grant_toward(ctx, amount, from);
      return;
    }
    if (config_.aggregate && from != kNoEdge && balance_ >= amount) {
      // Serve a child from cached permits without climbing further.
      balance_ -= amount;
      grant_toward(ctx, amount, from);
      return;
    }
    ensure(parent_edge_ != kNoEdge,
           "non-initiator request before joining the execution tree");
    grant_route_.push_back(from);
    ctx.send(parent_edge_, Message{kRequestTag, {amount}},
             MsgClass::kControl);
  }

  void grant_toward(Context& ctx, Weight amount, EdgeId down) {
    if (down == kNoEdge) {
      accept_grant(ctx, amount);
    } else {
      ctx.send(down, Message{kGrantTag, {amount}}, MsgClass::kControl);
    }
  }

  void accept_grant(Context& ctx, Weight amount) {
    balance_ += amount;
    request_outstanding_ = false;
    flush(ctx);
  }

  void flush(Context& ctx) {
    while (!pending_.empty()) {
      const Weight w = g_->weight(pending_.front().e);
      if (balance_ < w) break;
      balance_ -= w;
      consumed_ += w;
      pending_need_ -= w;
      PendingSend p = std::move(pending_.front());
      pending_.pop_front();
      ctx.send(p.e, wrap(p.m), p.cls);
    }
    maybe_request(ctx);
  }

  struct PendingSend {
    EdgeId e;
    Message m;
    MsgClass cls;
  };

  ControllerConfig config_;
  EdgeId parent_edge_ = kNoEdge;
  Weight balance_ = 0;
  Weight consumed_ = 0;
  std::deque<PendingSend> pending_;
  Weight pending_need_ = 0;
  Weight last_request_ = 0;
  bool request_outstanding_ = false;
  std::deque<EdgeId> grant_route_;
  // Root only.
  Weight issued_ = 0;
  bool exhausted_ = false;
};

}  // namespace

namespace {

// Sees through RunEnv::wrap's extra layer to the controller host at v.
Process& host_at(const ControlledRun& run, NodeId v) {
  Process& outer = run.network->process(v);
  return run.unwrap ? run.unwrap(outer) : outer;
}

ProcessFactory apply_env(ProcessFactory base, const RunEnv& env) {
  if (!env.wrap) return base;
  require(env.unwrap != nullptr,
          "RunEnv::wrap without unwrap would make run results unreadable");
  return env.wrap(std::move(base));
}

}  // namespace

ProcessFactory controller_host_factory(const Graph& g,
                                       const DiffusingFactory& factory,
                                       NodeId initiator,
                                       const ControllerConfig& config) {
  g.check_node(initiator);
  require(config.threshold >= 0, "threshold must be non-negative");
  // The graph is captured by reference (like every engine); the caller
  // keeps it alive for the lifetime of the hosts.
  return [&g, factory, initiator,
          config](NodeId v) -> std::unique_ptr<Process> {
    return std::make_unique<ControllerHost>(g, v, v == initiator,
                                            factory(v), config);
  };
}

ControllerView controller_view(const Process& host) {
  const auto& h = dynamic_cast<const ControllerHost&>(host);
  return ControllerView{h.exhausted(), h.permits_issued()};
}

DiffusingProcess& ControlledRun::inner(NodeId v) const {
  require(network != nullptr, "run has no live network");
  Process& outer = network->process(v);
  Process& host = unwrap ? unwrap(outer) : outer;
  return dynamic_cast<HostBase&>(host).inner();
}

ControlledRun run_uncontrolled(const Graph& g,
                               const DiffusingFactory& factory,
                               NodeId initiator,
                               std::unique_ptr<DelayModel> delay,
                               std::uint64_t seed, double max_time,
                               const RunEnv& env) {
  g.check_node(initiator);
  ControlledRun out;
  out.unwrap = env.unwrap;
  out.network = std::make_shared<Network>(
      g,
      apply_env(
          [&g, &factory, initiator](NodeId v) -> std::unique_ptr<Process> {
            return std::make_unique<PassthroughHost>(g, v, v == initiator,
                                                     factory(v));
          },
          env),
      std::move(delay), seed);
  if (env.faults != nullptr) out.network->set_faults(env.faults);
  out.stats = out.network->run(max_time);
  return out;
}

ControlledRun run_controlled(const Graph& g,
                             const DiffusingFactory& factory,
                             NodeId initiator,
                             const ControllerConfig& config,
                             std::unique_ptr<DelayModel> delay,
                             std::uint64_t seed, const RunEnv& env) {
  g.check_node(initiator);
  require(config.threshold >= 0, "threshold must be non-negative");
  ControlledRun out;
  out.unwrap = env.unwrap;
  // RunEnv::meter feeds the overhead layer's billing into the root's
  // admission rule (the host config is what the root reads).
  ControllerConfig cfg = config;
  if (env.meter != nullptr) cfg.meter = env.meter;
  out.network = std::make_shared<Network>(
      g, apply_env(controller_host_factory(g, factory, initiator, cfg), env),
      std::move(delay), seed);
  if (env.faults != nullptr) out.network->set_faults(env.faults);
  out.stats = out.network->run();
  auto& root = dynamic_cast<ControllerHost&>(host_at(out, initiator));
  out.exhausted = root.exhausted();
  out.permits_issued = root.permits_issued();
  // Overhead billed after the last permit request (e.g. a retransmit
  // tail) can overrun the threshold without any request being refused;
  // the budget signal must still fire.
  if (out.permits_issued > cfg.threshold) out.exhausted = true;
  return out;
}

}  // namespace csca
