#include "control/termination.h"

namespace csca {

namespace {

constexpr int kWrappedTag = 1000;
constexpr int kAckTag = 1;

class DetectorHost final : public Process {
 public:
  DetectorHost(const Graph& g, NodeId self, bool is_initiator,
               std::unique_ptr<DiffusingProcess> inner)
      : g_(&g),
        self_(self),
        is_initiator_(is_initiator),
        inner_(std::move(inner)) {}

  DiffusingProcess& inner() { return *inner_; }
  bool detected() const { return detected_; }
  double detected_at() const { return detected_at_; }

  void on_start(Context& ctx) override {
    if (!is_initiator_) return;
    Ctx c(*this, ctx);
    inner_->on_start(c);
    maybe_certify(ctx);
  }

  void on_message(Context& ctx, const Message& m) override {
    if (m.type == kAckTag) {
      ensure(--deficit_ >= 0, "ack without a matching send");
      maybe_disengage(ctx);
      return;
    }
    ensure(m.type == kWrappedTag, "detector: foreign message type");
    const bool was_engaged = engaged_ || is_initiator_;
    if (!was_engaged) {
      engaged_ = true;
      engager_ = m.edge;
    }
    Message unwrapped{static_cast<int>(m.at(0))};
    unwrapped.data.assign(m.data.begin() + 1, m.data.end());
    unwrapped.from = m.from;
    unwrapped.edge = m.edge;
    Ctx c(*this, ctx);
    inner_->on_message(c, unwrapped);
    if (was_engaged) {
      ctx.send(m.edge, Message{kAckTag}, MsgClass::kControl);
    }
    maybe_disengage(ctx);
  }

 private:
  class Ctx final : public DiffusingContext {
   public:
    Ctx(DetectorHost& host, Context& net) : host_(&host), net_(&net) {}
    NodeId self() const override { return host_->self_; }
    const Graph& graph() const override { return *host_->g_; }
    double now() const override { return net_->now(); }
    void send(EdgeId e, Message m, MsgClass cls) override {
      ++host_->deficit_;
      Message wrapped{kWrappedTag};
      wrapped.data.reserve(m.data.size() + 1);
      wrapped.data.push_back(m.type);
      wrapped.data.insert(wrapped.data.end(), m.data.begin(),
                          m.data.end());
      net_->send(e, std::move(wrapped), cls);
    }
    void finish() override { net_->finish(); }

   private:
    DetectorHost* host_;
    Context* net_;
  };

  void maybe_disengage(Context& ctx) {
    if (deficit_ > 0) return;
    if (is_initiator_) {
      maybe_certify(ctx);
      return;
    }
    if (engaged_) {
      engaged_ = false;
      const EdgeId up = engager_;
      engager_ = kNoEdge;
      ctx.send(up, Message{kAckTag}, MsgClass::kControl);
    }
  }

  void maybe_certify(Context& ctx) {
    if (detected_ || deficit_ > 0) return;
    detected_ = true;
    detected_at_ = ctx.now();
    ctx.finish();
  }

  const Graph* g_;
  NodeId self_;
  bool is_initiator_;
  std::unique_ptr<DiffusingProcess> inner_;
  bool engaged_ = false;
  EdgeId engager_ = kNoEdge;
  int deficit_ = 0;
  bool detected_ = false;
  double detected_at_ = -1;
};

}  // namespace

DiffusingProcess& TerminationRun::inner(NodeId v) const {
  require(network != nullptr, "run has no live network");
  return dynamic_cast<DetectorHost&>(network->process(v)).inner();
}

TerminationRun run_with_termination_detection(
    const Graph& g,
    const std::function<std::unique_ptr<DiffusingProcess>(NodeId)>&
        factory,
    NodeId initiator, std::unique_ptr<DelayModel> delay,
    std::uint64_t seed) {
  g.check_node(initiator);
  TerminationRun out;
  out.network = std::make_shared<Network>(
      g,
      [&](NodeId v) {
        return std::make_unique<DetectorHost>(g, v, v == initiator,
                                              factory(v));
      },
      std::move(delay), seed);
  out.stats = out.network->run();
  auto& root =
      dynamic_cast<DetectorHost&>(out.network->process(initiator));
  out.detected = root.detected();
  out.detected_at = root.detected_at();
  return out;
}

}  // namespace csca
