// Termination detection for diffusing computations ([DS80], the model
// §5 builds on, and §1.4.1's example of a task expressible as a global
// computation). Wraps any DiffusingProcess: every protocol message is
// acknowledged per the Dijkstra-Scholten discipline — a vertex holds the
// acknowledgement of the message that *engaged* it until all of its own
// messages are acknowledged — so the initiator's deficit reaching zero
// certifies that the whole computation has gone quiet, and it learns so
// at a concrete simulated time. The same machinery runs inline inside
// SPT_recur's strips; this is the standalone, reusable form.
#pragma once

#include <functional>
#include <memory>

#include "control/diffusing.h"
#include "sim/network.h"

namespace csca {

struct TerminationRun {
  RunStats stats;  ///< algorithm = protocol messages, control = acks
  bool detected = false;     ///< the initiator certified termination
  double detected_at = -1;   ///< simulated time of certification
  std::shared_ptr<Network> network;

  /// The inner protocol instance at v (for reading outputs).
  DiffusingProcess& inner(NodeId v) const;
};

/// Runs the protocol with Dijkstra-Scholten termination detection. The
/// initiator's callback-free certificate is exposed via the returned
/// TerminationRun. Acks double the message count (control class) but
/// cost the same per edge as the traffic they confirm.
TerminationRun run_with_termination_detection(
    const Graph& g,
    const std::function<std::unique_ptr<DiffusingProcess>(NodeId)>&
        factory,
    NodeId initiator, std::unique_ptr<DelayModel> delay,
    std::uint64_t seed = 1);

}  // namespace csca
