// Algorithm SPT_hybrid (§9.3): run SPT_synch and SPT_recur under a
// shared communication budget and keep whichever finishes first, for
// O(min of the two bills) communication (Corollary 9.3).
#pragma once

#include <functional>

#include "graph/tree.h"
#include "sim/delay.h"
#include "sim/message.h"

namespace csca {

struct SptHybridRun {
  std::vector<Weight> dist;
  RootedTree tree;
  RunStats synch_stats;  ///< what the SPT_synch side spent in the race
  RunStats recur_stats;  ///< what the SPT_recur side spent in the race
  bool synch_won = false;

  Weight total_cost() const {
    return synch_stats.total_cost() + recur_stats.total_cost();
  }
};

using SptDelayFactory = std::function<std::unique_ptr<DelayModel>()>;

/// Races SPT_synch (gamma_w parameter k) against SPT_recur (strip width
/// tau) from source. Requires g connected, k >= 2, tau >= 1.
SptHybridRun run_spt_hybrid(const Graph& g, NodeId source, int k,
                            Weight tau, const SptDelayFactory& delay,
                            std::uint64_t seed = 1);

}  // namespace csca
