#include "spt/spt_synch.h"

#include "graph/shortest_paths.h"
#include "graph/traversal.h"
#include "sim/sync_engine.h"
#include "spt/bellman_ford.h"

namespace csca {

SptSynchRun run_spt_synch(const Graph& g, NodeId source, int k,
                          std::unique_ptr<DelayModel> delay,
                          std::uint64_t seed) {
  g.check_node(source);
  require(is_connected(g), "run_spt_synch requires a connected graph");

  // Lemma 4.5 preprocessing: normalize the network; the protocol keeps
  // computing with the original weights.
  const Graph ng = normalized_copy(g);
  std::vector<Weight> orig_w(static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    orig_w[static_cast<std::size_t>(e)] = g.weight(e);
  }
  const auto factory = [&](NodeId v) {
    return std::make_unique<InSynchBellmanFord>(v, source, &orig_w);
  };

  // Reference run on the weighted synchronous engine: c_pi and t_pi.
  SyncEngine ref(ng, factory, /*enforce_in_synch=*/true);
  const RunStats sync_stats = ref.run();
  const auto t_pi =
      static_cast<std::int64_t>(sync_stats.completion_time) + 1;

  // The gamma_w-hosted asynchronous execution.
  SynchronizedNetwork net(ng, factory, SynchronizerKind::kGammaW, k, t_pi,
                          std::move(delay), seed);
  const SynchronizerRun async_run = net.run();
  ensure(async_run.hosted_all_finished,
         "every vertex must obtain a distance");

  std::vector<Weight> dist(static_cast<std::size_t>(g.node_count()));
  std::vector<EdgeId> parents(static_cast<std::size_t>(g.node_count()),
                              kNoEdge);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    auto& bf = net.hosted_as<InSynchBellmanFord>(v);
    dist[static_cast<std::size_t>(v)] = bf.dist();
    parents[static_cast<std::size_t>(v)] = bf.parent_edge();
    // Cross-check against the reference synchronous execution.
    ensure(bf.dist() ==
               ref.process_as<InSynchBellmanFord>(v).dist(),
           "synchronized run must match the synchronous reference");
  }
  RootedTree tree =
      RootedTree::from_parent_edges(g, source, std::move(parents));
  return SptSynchRun{std::move(dist), std::move(tree), sync_stats,
                     async_run, t_pi};
}

}  // namespace csca
