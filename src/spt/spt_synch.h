// Algorithm SPT_synch (§9.1): the synchronous SPT protocol executed on
// the asynchronous network via synchronizer gamma_w.
//
// Corollary 9.1: communication O(script-E + script-D k n log n) and time
// O(script-D log_k n log n) — the synchronous protocol costs O(script-E)
// messages and runs for O(script-D) pulses; the synchronizer adds its
// Lemma 4.8 amortized overheads per pulse. The driver measures both
// sides of that ledger: the reference synchronous run supplies c_pi and
// t_pi; the synchronized run's control ledger is the overhead.
#pragma once

#include "graph/tree.h"
#include "sync/synchronizer.h"

namespace csca {

struct SptSynchRun {
  std::vector<Weight> dist;  ///< exact distances in the original graph
  RootedTree tree;           ///< shortest-path tree realizing them
  RunStats sync_stats;       ///< the reference synchronous run (c_pi, t_pi)
  SynchronizerRun async_run;  ///< the gamma_w-hosted asynchronous run
  std::int64_t t_pi = 0;     ///< synchronous pulses to completion
};

/// Runs SPT_synch from source with gamma_w partition parameter k >= 2.
/// Requires g connected.
SptSynchRun run_spt_synch(const Graph& g, NodeId source, int k,
                          std::unique_ptr<DelayModel> delay,
                          std::uint64_t seed = 1);

}  // namespace csca
