// Algorithm SPT_recur (§9.2): the strip method of [Awe89] (Figure 9).
//
// The underlying DIJKSTRA algorithm grows the shortest-path tree in
// globally synchronized *strips* of the distance axis: strip b finalizes
// every vertex at distance in ((b-1) tau, b tau]. Inside a strip the
// frontier relaxes asynchronously (offers may be improved before the
// strip ends — the "short range" corrections); a Dijkstra-Scholten
// diffusing-computation termination detection rooted at the source
// detects strip quiescence, after which all offered distances <= b tau
// are final, and a count convergecast over the grown tree tells the
// source whether every vertex has been reached.
//
// The strip width tau is the communication/time dial of Figure 9:
//   tau -> infinity: one strip, pure asynchronous Bellman-Ford —
//         few synchronizations, but long-range wrong paths cost extra
//         offer corrections;
//   tau -> 1: per-distance synchronization, Dijkstra-exact — no wasted
//         offers, but Theta(D / tau) tree sweeps of control traffic.
// [Awe89]'s recursion re-applies the idea inside each strip to tune the
// exponent; we implement the single-level method, which already exhibits
// the tradeoff the paper's SPT table and Figure 9 illustrate (see
// DESIGN.md on this substitution).
#pragma once

#include <map>

#include "graph/tree.h"
#include "sim/network.h"

namespace csca {

class SptRecurProcess final : public Process {
 public:
  SptRecurProcess(const Graph& g, NodeId self, NodeId source, Weight tau);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, const Message& m) override;

  Weight dist() const { return dist_; }
  EdgeId parent_edge() const { return parent_edge_; }
  bool done() const { return done_; }
  std::int64_t strips_run() const { return band_; }

  // Optimistic-engine snapshots (plain value copy).
  std::unique_ptr<Process> save_state() const override {
    return std::make_unique<SptRecurProcess>(*this);
  }
  void restore_state(const Process& saved) override {
    *this = dynamic_cast<const SptRecurProcess&>(saved);
  }

 private:
  enum MsgType {
    kGo = 0,        // tracked; data = [band]
    kOffer = 1,     // tracked; data = [candidate dist, band]
    kAttach = 2,    // tracked; child gained on this edge
    kDetach = 3,    // tracked; child lost on this edge
    kAck = 4,       // Dijkstra-Scholten acknowledgement
    kCountReq = 5,  // data = [band]
    kCountResp = 6, // data = [band, subtree size]
    kDone = 7,
  };

  void start_band(Context& ctx);
  void send_offers(Context& ctx);
  void adopt(Context& ctx, EdgeId via, Weight value);
  void send_tracked(Context& ctx, EdgeId e, Message m);
  void process_tracked(Context& ctx, const Message& m);
  void on_ack(Context& ctx);
  void maybe_disengage(Context& ctx);
  void band_complete(Context& ctx);
  void start_count(Context& ctx);
  void maybe_count_done(Context& ctx);
  void finish_all(Context& ctx);

  const Graph* g_;
  NodeId self_;
  bool is_source_;
  Weight tau_;

  Weight dist_ = -1;
  EdgeId parent_edge_ = kNoEdge;
  std::vector<EdgeId> children_;
  std::int64_t band_ = 0;
  // Smallest value sent per edge. Point lookups only (never iterated),
  // so its order cannot feed message order (DET-1, docs/analysis.md).
  std::map<EdgeId, Weight> last_offer_;

  // Dijkstra-Scholten state.
  bool engaged_ = false;
  EdgeId engager_ = kNoEdge;
  int deficit_ = 0;

  // Count convergecast state.
  int count_pending_ = 0;
  std::int64_t count_acc_ = 0;

  bool done_ = false;
};

struct SptRecurRun {
  std::vector<Weight> dist;
  RootedTree tree;
  RunStats stats;
  std::int64_t strips = 0;  ///< number of strips processed
};

/// Runs SPT_recur from source with strip width tau >= 1 on a connected
/// graph.
SptRecurRun run_spt_recur(const Graph& g, NodeId source, Weight tau,
                          std::unique_ptr<DelayModel> delay,
                          std::uint64_t seed = 1);

}  // namespace csca
