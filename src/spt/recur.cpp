#include "spt/recur.h"

#include <algorithm>

#include "graph/traversal.h"

namespace csca {

SptRecurProcess::SptRecurProcess(const Graph& g, NodeId self,
                                 NodeId source, Weight tau)
    : g_(&g), self_(self), is_source_(self == source), tau_(tau) {
  require(tau >= 1, "strip width must be >= 1");
}

void SptRecurProcess::on_start(Context& ctx) {
  if (!is_source_) return;
  dist_ = 0;
  band_ = 1;
  start_band(ctx);
}

void SptRecurProcess::start_band(Context& ctx) {
  ensure(band_ * tau_ <= g_->total_weight() + tau_,
         "strip scan ran past the largest possible distance");
  deficit_ = 0;
  for (EdgeId e : children_) {
    send_tracked(ctx, e, Message{kGo, {band_}});
  }
  send_offers(ctx);
  if (deficit_ == 0) band_complete(ctx);  // nothing to do this strip
}

void SptRecurProcess::send_offers(Context& ctx) {
  if (dist_ < 0) return;
  const Weight limit = band_ * tau_;
  for (EdgeId e : g_->incident(self_)) {
    const Weight val = dist_ + g_->weight(e);
    if (val > limit) continue;
    const auto it = last_offer_.find(e);
    if (it != last_offer_.end() && it->second <= val) continue;
    last_offer_[e] = val;
    send_tracked(ctx, e, Message{kOffer, {val, band_}});
  }
}

void SptRecurProcess::adopt(Context& ctx, EdgeId via, Weight value) {
  if (dist_ >= 0 && value >= dist_) return;
  const bool reparent = parent_edge_ != via;
  if (reparent && parent_edge_ != kNoEdge) {
    send_tracked(ctx, parent_edge_, Message{kDetach});
  }
  if (reparent) {
    send_tracked(ctx, via, Message{kAttach});
    parent_edge_ = via;
  }
  dist_ = value;
  send_offers(ctx);
}

void SptRecurProcess::send_tracked(Context& ctx, EdgeId e, Message m) {
  ++deficit_;
  ctx.send(e, std::move(m), MsgClass::kAlgorithm);
}

void SptRecurProcess::on_message(Context& ctx, const Message& m) {
  switch (static_cast<MsgType>(m.type)) {
    case kGo:
    case kOffer:
    case kAttach:
    case kDetach:
      process_tracked(ctx, m);
      return;
    case kAck:
      on_ack(ctx);
      return;
    case kCountReq: {
      count_pending_ = static_cast<int>(children_.size());
      count_acc_ = 1;
      for (EdgeId e : children_) {
        ctx.send(e, Message{kCountReq, {m.at(0)}}, MsgClass::kAlgorithm);
      }
      maybe_count_done(ctx);
      return;
    }
    case kCountResp: {
      count_acc_ += m.at(1);
      --count_pending_;
      ensure(count_pending_ >= 0, "unexpected extra count response");
      maybe_count_done(ctx);
      return;
    }
    case kDone: {
      finish_all(ctx);
      return;
    }
  }
  ensure(false, "SptRecurProcess received a foreign message type");
}

void SptRecurProcess::process_tracked(Context& ctx, const Message& m) {
  const bool was_engaged = engaged_ || is_source_;
  if (!was_engaged) {
    engaged_ = true;
    engager_ = m.edge;
  }
  switch (static_cast<MsgType>(m.type)) {
    case kGo: {
      band_ = std::max(band_, m.at(0));
      for (EdgeId e : children_) {
        if (e != m.edge) send_tracked(ctx, e, Message{kGo, {band_}});
      }
      send_offers(ctx);
      break;
    }
    case kOffer: {
      band_ = std::max(band_, m.at(1));
      adopt(ctx, m.edge, m.at(0));
      break;
    }
    case kAttach: {
      children_.push_back(m.edge);
      break;
    }
    case kDetach: {
      const auto it =
          std::find(children_.begin(), children_.end(), m.edge);
      ensure(it != children_.end(), "detach from a non-child edge");
      children_.erase(it);
      break;
    }
    default:
      ensure(false, "not a tracked message");
  }
  if (was_engaged) {
    ctx.send(m.edge, Message{kAck}, MsgClass::kAlgorithm);
  }
  maybe_disengage(ctx);
}

void SptRecurProcess::on_ack(Context& ctx) {
  --deficit_;
  ensure(deficit_ >= 0, "ack without a matching tracked send");
  maybe_disengage(ctx);
}

void SptRecurProcess::maybe_disengage(Context& ctx) {
  if (deficit_ > 0) return;
  if (is_source_) {
    band_complete(ctx);
    return;
  }
  if (engaged_) {
    engaged_ = false;
    const EdgeId e = engager_;
    engager_ = kNoEdge;
    ctx.send(e, Message{kAck}, MsgClass::kAlgorithm);
  }
}

void SptRecurProcess::band_complete(Context& ctx) { start_count(ctx); }

void SptRecurProcess::start_count(Context& ctx) {
  count_pending_ = static_cast<int>(children_.size());
  count_acc_ = 1;
  for (EdgeId e : children_) {
    ctx.send(e, Message{kCountReq, {band_}}, MsgClass::kAlgorithm);
  }
  maybe_count_done(ctx);
}

void SptRecurProcess::maybe_count_done(Context& ctx) {
  if (count_pending_ > 0) return;
  if (!is_source_) {
    ensure(parent_edge_ != kNoEdge, "counted node must have a parent");
    ctx.send(parent_edge_, Message{kCountResp, {band_, count_acc_}}, MsgClass::kAlgorithm);
    return;
  }
  if (count_acc_ == g_->node_count()) {
    finish_all(ctx);
  } else {
    ++band_;
    start_band(ctx);
  }
}

void SptRecurProcess::finish_all(Context& ctx) {
  if (done_) return;
  done_ = true;
  for (EdgeId e : children_) {
    ctx.send(e, Message{kDone}, MsgClass::kAlgorithm);
  }
  ctx.finish();
}

SptRecurRun run_spt_recur(const Graph& g, NodeId source, Weight tau,
                          std::unique_ptr<DelayModel> delay,
                          std::uint64_t seed) {
  g.check_node(source);
  require(is_connected(g), "run_spt_recur requires a connected graph");
  Network net(
      g,
      [&g, source, tau](NodeId v) {
        return std::make_unique<SptRecurProcess>(g, v, source, tau);
      },
      std::move(delay), seed);
  RunStats stats = net.run();
  SptRecurRun out{{}, RootedTree(g.node_count(), source), stats, 0};
  std::vector<EdgeId> parents(static_cast<std::size_t>(g.node_count()),
                              kNoEdge);
  out.dist.resize(static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    auto& p = net.process_as<SptRecurProcess>(v);
    ensure(p.done(), "SPT_recur must terminate everywhere");
    out.dist[static_cast<std::size_t>(v)] = p.dist();
    parents[static_cast<std::size_t>(v)] = p.parent_edge();
  }
  out.tree = RootedTree::from_parent_edges(g, source, std::move(parents));
  out.strips =
      net.process_as<SptRecurProcess>(source).strips_run();
  return out;
}

}  // namespace csca
