#include "spt/hybrid.h"

#include "graph/traversal.h"
#include "sim/race.h"
#include "sim/sync_engine.h"
#include "spt/bellman_ford.h"
#include "spt/recur.h"
#include "sync/synchronizer.h"

namespace csca {

SptHybridRun run_spt_hybrid(const Graph& g, NodeId source, int k,
                            Weight tau, const SptDelayFactory& delay,
                            std::uint64_t seed) {
  g.check_node(source);
  require(is_connected(g), "run_spt_hybrid requires a connected graph");

  if (g.node_count() == 1) {
    return SptHybridRun{{0}, RootedTree(1, source), {}, {}, true};
  }

  // SPT_synch contestant: in-synch Bellman-Ford under gamma_w on the
  // normalized network. The pulse budget comes from a (cost-free,
  // driver-side) reference run of the synchronous engine.
  const Graph ng = normalized_copy(g);
  std::vector<Weight> orig_w(static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    orig_w[static_cast<std::size_t>(e)] = g.weight(e);
  }
  const auto bf_factory = [&](NodeId v) {
    return std::make_unique<InSynchBellmanFord>(v, source, &orig_w);
  };
  SyncEngine ref(ng, bf_factory, /*enforce_in_synch=*/true);
  const std::int64_t t_pi =
      static_cast<std::int64_t>(ref.run().completion_time) + 1;
  SynchronizedNetwork synch(ng, bf_factory, SynchronizerKind::kGammaW, k,
                            t_pi, delay(), seed);

  // SPT_recur contestant.
  Network recur(
      g,
      [&g, source, tau](NodeId v) {
        return std::make_unique<SptRecurProcess>(g, v, source, tau);
      },
      delay(), seed + 1);

  const auto synch_finished = [](Network& net) {
    return net.stats().events > 0 && net.idle();
  };
  const auto recur_finished = [source](Network& net) {
    return net.process_as<SptRecurProcess>(source).done();
  };

  const RaceOutcome outcome = race_networks(
      synch.network(), synch_finished, recur, recur_finished);

  SptHybridRun out{{},      RootedTree(g.node_count(), source),
                   outcome.first_stats, outcome.second_stats,
                   outcome.winner == 0};
  std::vector<EdgeId> parents(static_cast<std::size_t>(g.node_count()),
                              kNoEdge);
  out.dist.resize(static_cast<std::size_t>(g.node_count()));
  if (out.synch_won) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      auto& bf = synch.hosted_as<InSynchBellmanFord>(v);
      out.dist[static_cast<std::size_t>(v)] = bf.dist();
      parents[static_cast<std::size_t>(v)] = bf.parent_edge();
    }
  } else {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      auto& p = recur.process_as<SptRecurProcess>(v);
      out.dist[static_cast<std::size_t>(v)] = p.dist();
      parents[static_cast<std::size_t>(v)] = p.parent_edge();
    }
  }
  out.tree = RootedTree::from_parent_edges(g, source, std::move(parents));
  return out;
}

}  // namespace csca
