// The synchronous SPT protocol behind algorithm SPT_synch (§9.1).
//
// On a weighted synchronous network where a message on e takes exactly
// w(e) time, single-source distance propagation is nearly ideal: the
// first wave to arrive tends to be the shortest path, so each vertex
// improves O(1) times. The protocol below is an in-synch (Def. 4.2)
// asynchronous-Bellman-Ford: distance payloads are computed with the
// *original* edge weights (supplied separately) while transmission
// happens on the normalized network, exactly the Lemma 4.5 split between
// protocol semantics and timing. Final distances are therefore exact for
// the original graph.
#pragma once

#include <algorithm>
#include <map>
#include <vector>

#include "sim/sync_process.h"

namespace csca {

class InSynchBellmanFord final : public SyncProcess {
 public:
  /// orig_w[e] = the original (pre-normalization) weight of edge e, used
  /// for the distance arithmetic; must outlive the process.
  InSynchBellmanFord(NodeId self, NodeId source,
                     const std::vector<Weight>* orig_w)
      : self_(self), is_source_(self == source), orig_w_(orig_w) {
    require(orig_w != nullptr, "original weights required");
  }

  void on_start(SyncContext& ctx) override {
    if (!is_source_) return;
    dist_ = 0;
    ctx.finish();
    announce(ctx);
  }

  void on_message(SyncContext& ctx, const Message& m) override {
    const Weight cand =
        m.at(0) + (*orig_w_)[static_cast<std::size_t>(m.edge)];
    if (dist_ >= 0 && cand >= dist_) return;
    const bool first = dist_ < 0;
    dist_ = cand;
    parent_edge_ = m.edge;
    if (first) ctx.finish();
    announce(ctx);
  }

  void on_wakeup(SyncContext& ctx) override {
    const std::int64_t p = ctx.pulse();
    const auto it = pending_.find(p);
    if (it == pending_.end()) return;
    const std::vector<EdgeId> edges = std::move(it->second);
    pending_.erase(it);
    for (EdgeId e : edges) {
      send_dist(ctx, e);
    }
  }

  Weight dist() const { return dist_; }
  EdgeId parent_edge() const { return parent_edge_; }

  // Optimistic-engine snapshots: synchronizer hosts clone their hosted
  // protocol through this when saving (orig_w_ is shared config).
  std::unique_ptr<SyncProcess> clone_state() const override {
    return std::make_unique<InSynchBellmanFord>(*this);
  }

 private:
  void announce(SyncContext& ctx) {
    for (EdgeId e : ctx.incident()) {
      const Weight w = ctx.edge_weight(e);  // normalized timing weight
      if (ctx.pulse() % w == 0) {
        send_dist(ctx, e);
      } else {
        // Defer to the next in-synch send slot; the latest distance is
        // read at fire time, so multiple improvements coalesce.
        const std::int64_t at = (ctx.pulse() / w + 1) * w;
        auto [it, inserted] = pending_.try_emplace(at);
        if (std::find(it->second.begin(), it->second.end(), e) ==
            it->second.end()) {
          it->second.push_back(e);
        }
        if (inserted) ctx.schedule_wakeup(at);
      }
    }
  }

  void send_dist(SyncContext& ctx, EdgeId e) {
    auto [it, inserted] = last_sent_.try_emplace(e, -1);
    if (!inserted && it->second == dist_) return;  // nothing new to say
    it->second = dist_;
    ctx.send(e, Message{0, {dist_}}, MsgClass::kAlgorithm);
  }

  NodeId self_;
  bool is_source_;
  const std::vector<Weight>* orig_w_;
  Weight dist_ = -1;
  EdgeId parent_edge_ = kNoEdge;
  // Determinism proof sketch (DET-1, docs/analysis.md): pending_ is
  // read only through find(pulse) when that pulse fires, and the
  // per-pulse vector sends in enqueue order; last_sent_ is point
  // lookups only. Neither container's iteration order reaches the
  // wire.
  std::map<std::int64_t, std::vector<EdgeId>> pending_;
  std::map<EdgeId, Weight> last_sent_;
};

}  // namespace csca
