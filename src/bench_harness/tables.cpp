#include "bench_harness/tables.h"

namespace csca::bench {

std::vector<SweepSpec> builtin_tables() {
  std::vector<SweepSpec> out;
  out.push_back(table_f1_global_function());
  out.push_back(table_f2_connectivity());
  out.push_back(table_f3_mst());
  out.push_back(table_f4_spt());
  out.push_back(table_f5_slt_tradeoff());
  out.push_back(table_f6_slt_extremal());
  out.push_back(table_f7_lower_bound());
  out.push_back(table_f8_lower_bound_split());
  out.push_back(table_f9_strips());
  out.push_back(table_s3_clock_sync());
  out.push_back(table_s4_synchronizer());
  out.push_back(table_s5_controller());
  out.push_back(table_a1_cover());
  out.push_back(table_fault_degradation());
  out.push_back(table_fault_ctl());
  out.push_back(table_scale());
  out.push_back(table_timewarp());
  out.push_back(table_churn());
  return out;
}

const SweepSpec* find_table(const std::vector<SweepSpec>& tables,
                            const std::string& id) {
  for (const SweepSpec& t : tables) {
    if (t.table == id) return &t;
  }
  return nullptr;
}

}  // namespace csca::bench
