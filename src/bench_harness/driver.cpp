#include "bench_harness/driver.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_harness/json.h"
#include "bench_harness/tables.h"

namespace csca::bench {

namespace {

struct Args {
  std::vector<std::string> tables;
  std::string out_dir = "bench_out";
  int jobs = 1;
  bool smoke = false;
  bool list = false;
  bool ok = true;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      args.smoke = true;
    } else if (arg == "--list") {
      args.list = true;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      args.jobs = std::atoi(arg.c_str() + std::strlen("--jobs="));
      if (args.jobs < 1) {
        std::fprintf(stderr, "csca_sweep: bad %s\n", arg.c_str());
        args.ok = false;
      }
    } else if (arg.rfind("--table=", 0) == 0) {
      args.tables.push_back(arg.substr(std::strlen("--table=")));
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      args.out_dir = arg.substr(std::strlen("--out-dir="));
    } else {
      std::fprintf(stderr,
                   "csca_sweep: unknown argument %s\n"
                   "usage: [--table=ID]... [--smoke] [--jobs=N]"
                   " [--out-dir=PATH] [--list]\n",
                   arg.c_str());
      args.ok = false;
    }
  }
  return args;
}

void print_list(const std::vector<SweepSpec>& tables) {
  std::printf("%-4s %-5s %-6s %-6s %s\n", "id", "rows", "smoke", "param",
              "title");
  for (const SweepSpec& t : tables) {
    std::printf("%-4s %-5zu %-6zu %-6s %s\n", t.table.c_str(),
                t.rows.size(), t.smoke_rows.size(),
                t.param_name.empty() ? "-" : t.param_name.c_str(),
                t.title.c_str());
  }
}

}  // namespace

int sweep_main(const std::vector<std::string>& default_tables, int argc,
               char** argv) {
  const Args args = parse_args(argc, argv);
  if (!args.ok) return 2;

  const std::vector<SweepSpec> registry = builtin_tables();
  if (args.list) {
    print_list(registry);
    return 0;
  }

  const std::vector<std::string>& wanted =
      args.tables.empty() ? default_tables : args.tables;
  std::vector<SweepSpec> selected;
  if (wanted.empty()) {
    selected = registry;
  } else {
    for (const std::string& id : wanted) {
      const SweepSpec* spec = find_table(registry, id);
      if (spec == nullptr) {
        std::fprintf(stderr, "csca_sweep: unknown table id %s (see --list)\n",
                     id.c_str());
        return 2;
      }
      selected.push_back(*spec);
    }
  }

  SweepRunner runner({args.jobs, args.smoke});
  const std::vector<TableResult> results = runner.run_all(selected);

  bool all_pass = true;
  for (const TableResult& table : results) {
    const std::string path = write_table_json(args.out_dir, table);
    if (path.empty()) {
      std::fprintf(stderr, "csca_sweep: cannot write %s/BENCH_%s.json\n",
                   args.out_dir.c_str(), table.table.c_str());
      return 1;
    }
    const bool pass = table.pass();
    all_pass = all_pass && pass;
    std::printf("%-4s %-5s rows=%-3zu checks=%-3d failed=%-3d -> %s\n",
                table.table.c_str(), pass ? "PASS" : "FAIL",
                table.rows.size(), table.check_count(),
                table.failed_check_count(), path.c_str());
    if (!pass) {
      for (const RowResult& row : table.rows) {
        if (row.failed) {
          std::printf("  row %s: error: %s\n",
                      row.spec.name(table.param_name).c_str(),
                      row.error.c_str());
          continue;
        }
        for (const BoundCheck& check : row.checks) {
          if (!check.pass()) {
            std::printf(
                "  row %s: %s ratio %.4g outside [%.4g, %.4g]"
                " (measured %.6g, bound %.6g)\n",
                row.spec.name(table.param_name).c_str(), check.name.c_str(),
                check.ratio(), check.min_ratio, check.tolerance,
                check.measured, check.bound);
          }
        }
      }
    }
  }
  return all_pass ? 0 : 1;
}

}  // namespace csca::bench
