// Shared helpers for the table definitions under tables/. Internal to
// the bench harness.
#pragma once

#include <cmath>

#include "bench_harness/sweep.h"
#include "graph/families.h"
#include "graph/measures.h"
#include "sim/delay.h"
#include "sim/message.h"

namespace csca::bench {

inline void add_metric(RowResult& out, const std::string& name,
                       double value) {
  out.measured.push_back({name, value});
}

inline void add_check(RowResult& out, const std::string& name,
                      double measured, double bound, double tolerance,
                      double min_ratio = 0) {
  out.checks.push_back({name, measured, bound, tolerance, min_ratio});
}

/// The standard cost-sensitive counters every table row reports:
/// weighted network parameters plus the run's ledger.
inline void report_stats(RowResult& out, const NetworkMeasures& m,
                         const RunStats& stats) {
  add_metric(out, "E_w", static_cast<double>(m.comm_E));
  add_metric(out, "V_w", static_cast<double>(m.comm_V));
  add_metric(out, "D_w", static_cast<double>(m.comm_D));
  add_metric(out, "msgs", static_cast<double>(stats.total_messages()));
  add_metric(out, "cost", static_cast<double>(stats.total_cost()));
  add_metric(out, "time", stats.completion_time);
}

/// log2(n + 2), the smoothed log every bound formula uses.
inline double log2n(double n) { return std::log2(n + 2); }

}  // namespace csca::bench
