// The registered reproduction tables, one SweepSpec per table id:
//
//   F1  Figure 1   global function computation (+ Theorem 2.7 rows)
//   F2  Figure 2   connectivity / spanning tree
//   F3  Figure 3   MST algorithms
//   F4  Figure 4   SPT algorithms
//   F5  Figures 5  SLT weight/depth trade-off (q sweep)
//   F6  Figure 6   SLT on the [BKJ83] extremal families
//   F7  Figure 7   the lower-bound family G_n (Lemma 7.2 scaling)
//   F8  Figure 8   the split variant G'_{n,i}
//   F9  Figure 9   the strip method (tau sweep)
//   S3  Section 3  clock synchronization (alpha*/beta*/gamma*)
//   S4  Lemma 4.8  synchronizer gamma_w per-pulse overheads
//   S5  Cor. 5.1   controllers
//   A1  DESIGN.md  cover-coarsening substitution ablation
//   fault  docs/faults.md  ARQ overhead vs drop/dup rate (degradation)
//   fault_ctl  docs/faults.md  ARQ-aware admission: permits vs loss rate
//   scale  docs/scale.md  capacity scaling: CSR + pooled state, n to 10^6
//   churn  docs/faults.md  recovery cost vs churn rate (restabilization)
//
// Each table's rows, bound formulas and tolerances live in
// tables/<id>_*.cpp; bench/bench_*.cpp, tools/csca_sweep and the ctest
// conformance tier all consume this registry.
#pragma once

#include "bench_harness/sweep.h"

namespace csca::bench {

SweepSpec table_f1_global_function();
SweepSpec table_f2_connectivity();
SweepSpec table_f3_mst();
SweepSpec table_f4_spt();
SweepSpec table_f5_slt_tradeoff();
SweepSpec table_f6_slt_extremal();
SweepSpec table_f7_lower_bound();
SweepSpec table_f8_lower_bound_split();
SweepSpec table_f9_strips();
SweepSpec table_s3_clock_sync();
SweepSpec table_s4_synchronizer();
SweepSpec table_s5_controller();
SweepSpec table_a1_cover();
SweepSpec table_fault_degradation();
SweepSpec table_fault_ctl();
SweepSpec table_scale();
SweepSpec table_timewarp();
SweepSpec table_churn();

/// All tables, in the id order above.
std::vector<SweepSpec> builtin_tables();

/// The spec with the given id, or nullptr.
const SweepSpec* find_table(const std::vector<SweepSpec>& tables,
                            const std::string& id);

}  // namespace csca::bench
