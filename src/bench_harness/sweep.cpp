#include "bench_harness/sweep.h"

#include <cstdio>

#include "par/run_pool.h"
#include "util/rng.h"

namespace csca::bench {

namespace {

// %g mirrors the JSON renderer so param values hash and print the same.
std::string format_param(double param) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", param);
  return buf;
}

}  // namespace

std::string RowSpec::name(const std::string& param_name) const {
  std::string out = algo;
  if (!family.empty()) out += "/" + family;
  out += "/n=" + std::to_string(n);
  if (!param_name.empty()) out += "/" + param_name + "=" + format_param(param);
  return out;
}

bool RowResult::pass() const {
  if (failed) return false;
  for (const BoundCheck& c : checks) {
    if (!c.pass()) return false;
  }
  return true;
}

double RowResult::metric(const std::string& name, double fallback) const {
  for (const Metric& m : measured) {
    if (m.name == name) return m.value;
  }
  return fallback;
}

bool TableResult::pass() const {
  for (const RowResult& r : rows) {
    if (!r.pass()) return false;
  }
  return true;
}

int TableResult::check_count() const {
  int out = 0;
  for (const RowResult& r : rows) out += static_cast<int>(r.checks.size());
  return out;
}

int TableResult::failed_check_count() const {
  int out = 0;
  for (const RowResult& r : rows) {
    if (r.failed) ++out;
    for (const BoundCheck& c : r.checks) {
      if (!c.pass()) ++out;
    }
  }
  return out;
}

std::uint64_t row_seed(const std::string& table, const RowSpec& spec) {
  // Chained splitmix64 finalizer over the identity string: stable across
  // platforms and runs, decorrelated for adjacent rows.
  const std::string key = table + "/" + spec.algo + "/" + spec.family +
                          "/n=" + std::to_string(spec.n) +
                          "/p=" + format_param(spec.param);
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const char c : key) {
    h = mix64(h ^ static_cast<unsigned char>(c));
  }
  return h;
}

void finalize_rows(SweepSpec& spec) {
  for (RowSpec& row : spec.rows) row.seed = row_seed(spec.table, row);
  for (RowSpec& row : spec.smoke_rows) row.seed = row_seed(spec.table, row);
}

SweepRunner::SweepRunner(const Options& options) : options_(options) {
  require(options.jobs >= 1, "SweepRunner requires jobs >= 1");
}

TableResult SweepRunner::run(const SweepSpec& spec) const {
  return run_all({spec}).front();
}

std::vector<TableResult> SweepRunner::run_all(
    const std::vector<SweepSpec>& specs) const {
  // Flatten every (table, row) pair into one submission-ordered work
  // list so the pool load-balances across tables.
  struct Item {
    const SweepSpec* spec;
    const RowSpec* row;
  };
  std::vector<Item> items;
  for (const SweepSpec& spec : specs) {
    for (const RowSpec& row : spec.selected(options_.smoke)) {
      items.push_back({&spec, &row});
    }
  }

  const auto run_one = [](const Item& item) {
    RowResult out;
    try {
      out = item.spec->run(*item.row);
    } catch (const std::exception& e) {
      out = RowResult{};
      out.error = e.what();
      out.failed = true;
    }
    out.spec = *item.row;  // the runner owns the row identity in results
    return out;
  };

  std::vector<RowResult> results;
  if (options_.jobs == 1) {
    results.reserve(items.size());
    for (const Item& item : items) results.push_back(run_one(item));
  } else {
    RunPool pool(options_.jobs);
    results = pool.map(items.size(),
                       [&](std::size_t i) { return run_one(items[i]); });
  }

  std::vector<TableResult> out;
  out.reserve(specs.size());
  std::size_t next = 0;
  for (const SweepSpec& spec : specs) {
    TableResult table;
    table.table = spec.table;
    table.title = spec.title;
    table.param_name = spec.param_name;
    table.smoke = options_.smoke;
    const std::size_t count = spec.selected(options_.smoke).size();
    for (std::size_t i = 0; i < count; ++i) {
      table.rows.push_back(std::move(results[next++]));
    }
    out.push_back(std::move(table));
  }
  return out;
}

}  // namespace csca::bench
