// F7 / F8 — Figures 7-8 / Lemma 7.2: the Omega(min{script-E,
// n script-V}) connectivity lower bound as a scaling experiment.
//
// F7 sweeps n on the family G_n: as n doubles, script-E ~ n X^4 grows
// linearly and the edge-scanners' (flood, DFS) cost tracks it
// (cost_over_E flat), while n script-V ~ n^2 X grows quadratically and
// the tree-growers' (MST_centr, CON_hybrid) cost tracks that — exactly
// Lemma 7.2's Theta(n^2 X) sum.
//
// F8 repeats the experiment on the split variant G'_{n,i} (bypass edge
// (i, n-1-i) replaced by two heavy pendant edges): the algorithms must
// distinguish it from G_n and still pay the same regimes.
#include "bench_harness/table_common.h"
#include "bench_harness/tables.h"
#include "conn/dfs.h"
#include "conn/flood.h"
#include "conn/hybrid.h"
#include "conn/mst_centr.h"

namespace csca::bench {

namespace {

RowResult run_row(const RowSpec& spec) {
  RowResult out;
  const Graph g = make_family(spec.family, spec.n, spec.seed);
  const NetworkMeasures m = measure(g);
  RunStats stats;
  if (spec.algo == "flood") {
    stats = run_flood(g, 0, make_exact_delay()).stats;
  } else if (spec.algo == "dfs") {
    stats = run_dfs(g, 0, make_exact_delay()).stats;
  } else if (spec.algo == "mst_centr") {
    stats = run_mst_centr(g, 0, make_exact_delay()).stats;
  } else {
    stats = run_con_hybrid(g, 0, make_exact_delay()).stats;
  }
  report_stats(out, m, stats);

  const double cost = static_cast<double>(stats.total_cost());
  const double e = static_cast<double>(m.comm_E);
  const double nv = static_cast<double>(m.n) * static_cast<double>(m.comm_V);
  add_metric(out, "cost_over_E", cost / e);
  add_metric(out, "cost_over_nV", cost / nv);
  // Edge-scanners are flat in script-E, tree-growers in n script-V; the
  // tolerances freeze the Theta regimes (flood sits at 2, dfs at ~4,
  // mst_centr at 2.5, the hybrid inside the §7.2 factor).
  if (spec.algo == "flood") {
    add_check(out, "cost_over_E", cost, e, 3.0);
  } else if (spec.algo == "dfs") {
    add_check(out, "cost_over_E", cost, e, 5.0);
  } else if (spec.algo == "mst_centr") {
    add_check(out, "cost_over_nV", cost, nv, 3.0);
  } else {
    add_check(out, "cost_over_nV", cost, nv, 8.0);
  }
  return out;
}

SweepSpec make_lb_table(const char* table, const char* title,
                        const char* family, const std::vector<int>& sizes) {
  SweepSpec spec;
  spec.table = table;
  spec.title = title;
  spec.run = run_row;
  for (const int n : sizes) {
    for (const char* algo : {"flood", "dfs", "mst_centr", "hybrid"}) {
      spec.rows.push_back({algo, family, n});
    }
  }
  for (const char* algo : {"flood", "dfs", "mst_centr", "hybrid"}) {
    spec.smoke_rows.push_back({algo, family, 9});
  }
  finalize_rows(spec);
  return spec;
}

}  // namespace

SweepSpec table_f7_lower_bound() {
  return make_lb_table("F7", "Figure 7 - lower-bound family G_n",
                       "lower_bound", {9, 17, 33, 65});
}

SweepSpec table_f8_lower_bound_split() {
  return make_lb_table("F8", "Figure 8 - split variant G'_{n,i}",
                       "lower_bound_split", {9, 17, 33});
}

}  // namespace csca::bench
