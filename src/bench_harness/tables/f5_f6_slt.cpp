// F5 / F6 — Figures 5-6: the SLT algorithm, the weight/depth trade-off
// as the parameter q sweeps (Lemmas 2.4 / 2.5):
//   w(T)   <= (1 + 2/q) script-V
//   depth  <= (2q + 1) script-D
// weight_over_V falls toward 1 and depth_over_D rises (bounded) as q
// grows; the lemma checks are measured/bound ratios with tolerance 1 —
// the lemmas are proved, so any drift past 1 is a bug, not a regression.
//
// F6 runs the same sweep on the [BKJ83] extremal families the §2.2
// motivation cites: spt_heavy (w(SPT) = Theta(n script-V)) and mst_deep
// (Diam(MST) = Theta(n script-D)) — the graphs where *only* an SLT keeps
// both ratios small.
#include "bench_harness/table_common.h"
#include "bench_harness/tables.h"
#include "core/slt.h"

namespace csca::bench {

namespace {

RowResult run_row(const RowSpec& spec) {
  RowResult out;
  const Graph g = make_family(spec.family, spec.n, spec.seed);
  const NetworkMeasures m = measure(g);
  const double q = spec.param;

  const auto slt = build_slt(g, 0, q);
  const double weight = static_cast<double>(slt.weight(g));
  const double depth = static_cast<double>(slt.depth(g));
  const double v = static_cast<double>(m.comm_V);
  const double d = static_cast<double>(m.comm_D);

  add_metric(out, "weight", weight);
  add_metric(out, "depth", depth);
  add_metric(out, "diam", static_cast<double>(slt.diameter(g)));
  add_metric(out, "breakpoints",
             static_cast<double>(slt.breakpoints.size()));
  add_metric(out, "weight_over_V", weight / v);
  add_metric(out, "depth_over_D", depth / d);
  // Lemma 2.4 / 2.5: proved bounds, tolerance exactly 1.
  add_check(out, "lemma_24", weight, (1.0 + 2.0 / q) * v, 1.0);
  add_check(out, "lemma_25", depth, (2.0 * q + 1.0) * d, 1.0);
  return out;
}

SweepSpec make_slt_table(const char* table, const char* title,
                         const std::vector<const char*>& families,
                         const std::vector<double>& qs, int n_default) {
  SweepSpec spec;
  spec.table = table;
  spec.title = title;
  spec.param_name = "q";
  spec.run = run_row;
  for (const char* family : families) {
    const int n = std::string(family) == "cycle" ? 96 : n_default;
    for (const double q : qs) {
      spec.rows.push_back({"slt", family, n, q});
    }
  }
  for (const double q : {0.5, 2.0, 8.0}) {
    spec.smoke_rows.push_back({"slt", families.front(), 12, q});
  }
  finalize_rows(spec);
  return spec;
}

}  // namespace

SweepSpec table_f5_slt_tradeoff() {
  return make_slt_table("F5", "Figure 5 - SLT weight/depth trade-off",
                        {"cycle", "gnp", "geometric"},
                        {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}, 64);
}

SweepSpec table_f6_slt_extremal() {
  return make_slt_table("F6", "Figure 6 - SLT on [BKJ83] extremal families",
                        {"spt_heavy", "mst_deep"},
                        {0.5, 1.0, 2.0, 4.0, 8.0}, 64);
}

}  // namespace csca::bench
