// churn — recovery cost vs churn rate (BENCH_churn.json).
//
// Each row runs a structure-building protocol (GHS MST or the recursive
// SPT) through a RestabilizingRun under a weight-redraw churn plan: 3
// epochs, each re-drawing a keyed `redraw` fraction of the edge weights
// (the row's param). The run bills every message churn made necessary —
// the per-epoch dirty probe plus any re-execution — to
// MsgClass::kRecovery, and the row checks that ledger class against the
// paper-style recovery envelope
//
//   recovery_cost <= sum_k [ 2 * W(G_k) + rebuild_k * C_pi(G_k) ]
//
// where G_k is the graph after epoch k's re-draws (the table replays
// apply_churn_weights on its own copy, so the per-epoch terms use the
// exact weights the run saw), 2 * W(G_k) is the dirty probe's exact
// cost (a PIF wave crosses every edge twice), rebuild_k is 1 iff the
// epoch's certificate check failed, and C_pi is the protocol's own
// construction bound from the F3/F4 tables — script-E + script-V log n
// for GHS, script-E + (script-D / tau + 2) * 2 script-V for the
// recursive SPT with tau = max edge weight. The tolerance carries only
// the rebuild term's slack (the probe term is exact), so it matches the
// F3/F4 construction tolerances. final_valid asserts the live structure
// passes its certificate against the final weights.
#include <string>

#include "bench_harness/table_common.h"
#include "bench_harness/tables.h"
#include "control/restabilize.h"

namespace csca::bench {

namespace {

constexpr int kEpochs = 3;

ChurnPlan redraw_plan(double fraction) {
  ChurnPlan plan;
  for (int k = 0; k < kEpochs; ++k) {
    ChurnEpoch ep;
    ep.at = static_cast<double>(k + 1);
    ep.redraw_fraction = fraction;
    plan.epochs.push_back(ep);
  }
  return plan;
}

// The protocol's construction-cost bound on the current weights — the
// same bills (and tolerances) the F3/F4 tables hold the fault-free
// builders to.
double rebuild_bill(const Graph& g, RestabilizeSubject subject) {
  const NetworkMeasures m = measure(g);
  const double e = static_cast<double>(m.comm_E);
  const double v = static_cast<double>(m.comm_V);
  if (subject == RestabilizeSubject::kMst) {
    return e + v * log2n(m.n);
  }
  const double d = static_cast<double>(m.comm_D);
  const double tau = static_cast<double>(std::max<Weight>(1, g.max_weight()));
  return e + (d / tau + 2) * 2 * v;
}

RowResult run_row(const RowSpec& spec) {
  RowResult out;
  const Graph g = make_family(spec.family, spec.n, spec.seed);
  const NetworkMeasures m = measure(g);
  const RestabilizeSubject subject = spec.algo == "mst"
                                         ? RestabilizeSubject::kMst
                                         : RestabilizeSubject::kSpt;

  RestabilizeOptions opts;
  opts.subject = subject;
  opts.churn = redraw_plan(spec.param);
  opts.seed = spec.seed;
  const RestabilizeReport report = run_restabilizing(g, opts);

  // Replay the keyed re-draws on a private copy to recover each epoch's
  // exact weights, and assemble the envelope term by term.
  Graph work = g;
  double envelope = 0;
  for (std::size_t k = 0; k < report.epochs.size(); ++k) {
    apply_churn_weights(opts.churn, k, opts.seed, work);
    envelope += 2.0 * static_cast<double>(work.total_weight());
    if (report.epochs[k].restabilized) {
      envelope += rebuild_bill(work, subject);
    }
  }

  report_stats(out, m, report.total);
  add_metric(out, "epochs", static_cast<double>(report.epochs.size()));
  add_metric(out, "restabilizations",
             static_cast<double>(report.restabilizations));
  add_metric(out, "recovery_msgs",
             static_cast<double>(report.total.recovery_messages));
  add_metric(out, "recovery_cost",
             static_cast<double>(report.total.recovery_cost));
  add_check(out, "recovery_over_bound",
            static_cast<double>(report.total.recovery_cost), envelope, 3.0);
  add_check(out, "final_valid", report.final_valid ? 1.0 : 0.0, 1.0, 1.0,
            /*min_ratio=*/1.0);
  return out;
}

}  // namespace

SweepSpec table_churn() {
  SweepSpec spec;
  spec.table = "churn";
  spec.title = "Dynamic topology - recovery cost vs churn rate";
  spec.param_name = "redraw";
  spec.run = run_row;
  for (const char* family : {"gnp", "geometric", "grid"}) {
    for (const char* algo : {"mst", "spt"}) {
      for (const double p : {0.1, 0.25, 0.5}) {
        spec.rows.push_back({algo, family, 24, p});
      }
    }
  }
  for (const char* algo : {"mst", "spt"}) {
    for (const double p : {0.1, 0.5}) {
      spec.smoke_rows.push_back({algo, "gnp", 12, p});
    }
  }
  finalize_rows(spec);
  return spec;
}

}  // namespace csca::bench
