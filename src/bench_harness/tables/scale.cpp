// scale — capacity scaling of the CSR graph store + pooled node state
// (docs/scale.md): one flood broadcast per row, up to 10^6 nodes.
//
// Two kinds of rows share one grid:
//
//   * smoke rows (small n): deterministic metrics only — events,
//     peak queue depth, bytes/node. They run in the ctest conformance
//     tier at any --jobs, so they must stay inside the byte-identical
//     JSON contract (no wall-clock fields).
//   * full rows (n >= 10^4): additionally report seconds and
//     events_per_sec. The 10^6-node grid row carries the throughput
//     floor check against the flood_grid_1M events/sec recorded in
//     BENCH_engine.json — the capacity regression gate.
//
// bytes/node accounting (see docs/scale.md): state_bytes_per_node is
// the pooled per-node protocol state (sim/process_store.h) and is what
// the <= 64 bound checks; graph_bytes_per_node (CSR + edge table +
// edge index) is reported alongside, unbounded — a grid carries ~2
// edges/node of shared topology, which is not per-node protocol state.
#include <algorithm>
#include <chrono>

#include "bench_harness/table_common.h"
#include "bench_harness/tables.h"
#include "conn/flood.h"
#include "sim/network.h"

namespace csca::bench {

namespace {

// Full rows time wall-clock; everything below this n is a smoke row
// and reports deterministic metrics only.
constexpr int kTimedFloor = 10000;

// The flood_grid_1M events/sec row of BENCH_engine.json at the time
// the scale table was added: the sequential engine's throughput on a
// ~2M-event storm (n = 4096, cache-resident). The 10^6-node flood —
// whose working set is ~100x larger — must not fall below it: big-n
// capacity may not cost event throughput.
constexpr double kEngineFloorEventsPerSec = 1.878384e6;

RowResult run_row(const RowSpec& spec) {
  RowResult out;
  const Graph g = make_family(spec.family, spec.n, spec.seed);
  Network net(g,
              Network::ProcessStore::pooled<FloodProcess>(
                  g.node_count(),
                  [](NodeId v) { return FloodProcess(v, 0); }),
              make_exact_delay(), spec.seed);

  // Wall-clock brackets the run for the throughput metric only; it
  // never feeds simulation state (exact delays).
  // csca-analyze: allow(DET-2): throughput bracket, not simulation state
  const auto t0 = std::chrono::steady_clock::now();
  const RunStats stats = net.run();
  // csca-analyze: allow(DET-2): closes the throughput bracket above.
  const auto t1 = std::chrono::steady_clock::now();

  const double n = static_cast<double>(g.node_count());
  add_metric(out, "events", static_cast<double>(stats.events));
  add_metric(out, "msgs", static_cast<double>(stats.total_messages()));
  add_metric(out, "peak_queue_depth",
             static_cast<double>(net.peak_queue_depth()));
  const double state_bpn =
      static_cast<double>(net.process_state_bytes()) / n;
  const double graph_bpn = static_cast<double>(g.memory_bytes()) / n;
  add_metric(out, "state_bytes_per_node", state_bpn);
  add_metric(out, "graph_bytes_per_node", graph_bpn);
  add_check(out, "state_bytes_per_node", state_bpn, 64.0, 1.0);

  if (spec.n >= kTimedFloor) {
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    const double eps =
        static_cast<double>(stats.events) / std::max(secs, 1e-12);
    add_metric(out, "seconds", secs);
    add_metric(out, "events_per_sec", eps);
    if (spec.family == "grid" && spec.n >= 1000000) {
      // min_ratio = 1: the row *fails* when throughput drops below the
      // engine floor; the huge tolerance leaves the top side open.
      add_check(out, "events_per_sec_floor", eps, kEngineFloorEventsPerSec,
                1e9, 1.0);
    }
  }
  return out;
}

}  // namespace

SweepSpec table_scale() {
  SweepSpec spec;
  spec.table = "scale";
  spec.title = "Capacity scaling - CSR graph store + pooled node state";
  spec.run = run_row;
  for (const int n : {10000, 100000, 1000000}) {
    spec.rows.push_back({"flood", "grid", n});
  }
  spec.rows.push_back({"flood", "cycle", 1000000});
  spec.rows.push_back({"flood", "mst_deep", 100000});
  for (const char* family : {"grid", "cycle", "mst_deep"}) {
    spec.smoke_rows.push_back({"flood", family, 256});
  }
  finalize_rows(spec);
  return spec;
}

}  // namespace csca::bench
