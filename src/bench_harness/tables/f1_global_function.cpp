// F1 — Figure 1: global function computation, O(script-V) communication
// / O(script-D) time via shallow-light trees against the Theorem 2.1
// lower bounds. Rows: aggregation tree (MST / SPT / SLT(q=2)) x family;
// cost_over_V and time_over_D are the headline checks — only the SLT
// keeps both small on every family (the MST's time blows up on the
// cycle, the SPT's cost on heavy-SPT graphs). The dslt rows reproduce
// Theorem 2.7: distributed SLT construction in O(script-V n^2) comm /
// O(script-D n^2) time.
#include "bench_harness/table_common.h"
#include "bench_harness/tables.h"
#include "core/distributed_slt.h"
#include "core/global_compute.h"
#include "core/slt.h"
#include "graph/mst.h"
#include "graph/shortest_paths.h"
#include "util/rng.h"

namespace csca::bench {

namespace {

RootedTree make_tree(const std::string& kind, const Graph& g) {
  if (kind == "mst") return mst_tree(g, 0);
  if (kind == "spt") return dijkstra(g, 0).tree(g);
  return build_slt(g, 0, 2.0).tree;  // "slt"
}

RowResult run_row(const RowSpec& spec) {
  RowResult out;
  const Graph g = make_family(spec.family, spec.n, spec.seed);
  const NetworkMeasures m = measure(g);

  if (spec.algo == "dslt") {
    const auto run = run_distributed_slt(g, 0, 2.0,
                                         [] { return make_exact_delay(); });
    const double cost = static_cast<double>(run.total_cost());
    const double time = run.total_time();
    const double n2 = static_cast<double>(m.n) * static_cast<double>(m.n);
    add_metric(out, "cost", cost);
    add_metric(out, "time", time);
    add_check(out, "cost_over_Vn2", cost,
              static_cast<double>(m.comm_V) * n2, /*tolerance=*/1.0);
    add_check(out, "time_over_Dn2", time,
              static_cast<double>(m.comm_D) * n2, /*tolerance=*/1.0);
    return out;
  }

  const RootedTree t = make_tree(spec.algo, g);
  std::vector<std::int64_t> inputs(static_cast<std::size_t>(g.node_count()));
  Rng rng(derive_stream_seed(spec.seed, 1));
  for (auto& x : inputs) x = rng.uniform_int(-1000, 1000);
  const GlobalComputeRun run =
      run_global_compute(g, t, functions::sum(), inputs, make_exact_delay());
  report_stats(out, m, run.stats);

  // The convergecast + broadcast round trip costs 2 tree traversals, so
  // ~2 is the floor; the tolerances record how far each tree's bad case
  // is allowed to drift (the MST's time on the cycle, the SPT's cost).
  const double cost_tol = spec.algo == "spt" ? 5.0 : 3.0;
  const double time_tol = spec.algo == "mst" ? 6.0 : 3.5;
  add_check(out, "cost_over_V",
            static_cast<double>(run.stats.total_cost()),
            static_cast<double>(m.comm_V), cost_tol);
  add_check(out, "time_over_D", run.completion_time,
            static_cast<double>(m.comm_D), time_tol);
  return out;
}

}  // namespace

SweepSpec table_f1_global_function() {
  SweepSpec spec;
  spec.table = "F1";
  spec.title = "Figure 1 - global function computation via SLTs";
  spec.run = run_row;
  for (const char* family : {"gnp", "geometric", "cycle"}) {
    const int n = std::string(family) == "cycle" ? 64 : 48;
    for (const char* tree : {"mst", "spt", "slt"}) {
      spec.rows.push_back({tree, family, n});
    }
  }
  for (const char* family : {"gnp", "grid"}) {
    spec.rows.push_back({"dslt", family, 24});
  }
  for (const char* tree : {"mst", "spt", "slt"}) {
    spec.smoke_rows.push_back({tree, "gnp", 12});
  }
  spec.smoke_rows.push_back({"dslt", "gnp", 10});
  finalize_rows(spec);
  return spec;
}

}  // namespace csca::bench
