// A1 — ablation for the [AP91] Theorem 1.1 substitution (DESIGN.md):
// the greedy cluster-merging coarsening guarantees subsumption and the
// (2k-1) radius bound by construction; the max-degree property is the
// one we measure instead of prove. Rows sweep k and check
//   rad_slack    = Rad(T) / ((2k-1) Rad(S))        (must be <= 1)
//   degree_norm  = Delta(T) / (k |S|^{1/k})        (Thm 1.1(3) shape)
// plus the induced tree-edge-cover's Def. 3.1 measurements (max depth
// over d log n, max edge sharing over log n).
#include <algorithm>
#include <cmath>

#include "bench_harness/table_common.h"
#include "bench_harness/tables.h"
#include "partition/cover.h"
#include "partition/tree_edge_cover.h"

namespace csca::bench {

namespace {

RowResult run_coarsen(const RowSpec& spec) {
  RowResult out;
  const Graph g = make_family(spec.family, spec.n, spec.seed);
  const int k = static_cast<int>(spec.param);
  const Cover s = neighborhood_path_cover(g);
  const Cover t = coarsen(g, s, k);

  const double rs =
      static_cast<double>(std::max<Weight>(1, cover_radius(g, s)));
  const double rt = static_cast<double>(cover_radius(g, t));
  const double deg = cover_max_degree(g, t);
  add_metric(out, "initial_clusters", static_cast<double>(s.size()));
  add_metric(out, "clusters", static_cast<double>(t.size()));
  add_metric(out, "rad_S", rs);
  add_metric(out, "rad_T", rt);
  add_metric(out, "max_degree", deg);
  // The (2k-1) radius bound holds by construction — tolerance exactly 1.
  add_check(out, "rad_slack", rt, (2.0 * k - 1.0) * rs, 1.0);
  add_check(out, "degree_norm", deg,
            k * std::pow(static_cast<double>(s.size()), 1.0 / k), 0.6);
  return out;
}

RowResult run_tec(const RowSpec& spec) {
  RowResult out;
  const Graph g = make_family(spec.family, spec.n, spec.seed);
  const NetworkMeasures m = measure(g);
  const TreeEdgeCover tec = build_tree_edge_cover(g);
  const double logn = log2n(m.n);
  add_metric(out, "trees", static_cast<double>(tec.size()));
  add_check(out, "depth_over_dlogn",
            static_cast<double>(max_tree_depth(g, tec)),
            static_cast<double>(m.d) * logn, 0.5);
  add_check(out, "sharing_over_logn",
            static_cast<double>(max_tree_edge_sharing(g, tec)), logn, 1.0);
  return out;
}

RowResult run_row(const RowSpec& spec) {
  return spec.algo == "tree_edge_cover" ? run_tec(spec) : run_coarsen(spec);
}

}  // namespace

SweepSpec table_a1_cover() {
  SweepSpec spec;
  spec.table = "A1";
  spec.title = "Cover coarsening ablation (AP91 Thm 1.1 substitution)";
  spec.param_name = "k";
  spec.run = run_row;
  for (const char* family : {"gnp", "grid", "heavy_chords"}) {
    for (const int k : {1, 2, 3, 5, 8}) {
      spec.rows.push_back({"coarsen", family, 32, static_cast<double>(k)});
    }
    spec.rows.push_back({"tree_edge_cover", family, 32, 1.0});
  }
  spec.smoke_rows.push_back({"coarsen", "gnp", 12, 2.0});
  spec.smoke_rows.push_back({"tree_edge_cover", "gnp", 12, 1.0});
  finalize_rows(spec);
  return spec;
}

}  // namespace csca::bench
