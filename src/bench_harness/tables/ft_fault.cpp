// fault — the reliability degradation table (BENCH_fault.json).
//
// Each row runs one protocol (flooding, broadcast-echo, or the
// controller-metered echo) twice on the same graph and seed: once bare
// on reliable links (the fault-free baseline) and once behind the ARQ
// layer under a symmetric drop/duplicate plan at rate p (the row's
// param). The row then asserts two things:
//
//   completed        the protocol's output is still correct — flooding
//                    reaches everyone, the echo terminates covered, the
//                    controller never cuts a correct execution off;
//   overhead_over_bound
//                    faulted weighted cost <= R(p) * fault-free cost,
//                    with R(p) = kArqBaseOverhead * (1 + kArqFaultSlope
//                    * p): the factor-2 ack tax (one ACK per DATA, same
//                    edge weight) plus retransmit traffic growing
//                    linearly in the fault rate. The constants are the
//                    documented bound of docs/faults.md.
//
// The p = 0 rows measure the pure ack tax (the plan is inactive, so the
// engine runs its fault-free path and only the ARQ layer's own frames
// cost anything), anchoring the R(p) curve.
#include <memory>

#include "bench_harness/table_common.h"
#include "bench_harness/tables.h"
#include "conn/flood.h"
#include "control/controller.h"
#include "control/protocols.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/reliable_link.h"

namespace csca::bench {

namespace {

// Documented overhead bound R(p) = kArqBaseOverhead * (1 +
// kArqFaultSlope * p); see docs/faults.md for the derivation.
constexpr double kArqBaseOverhead = 2.5;
constexpr double kArqFaultSlope = 10.0;

FaultPlan drop_dup_plan(double p) {
  FaultPlan plan;
  plan.drop_rate = p;
  plan.dup_rate = p;
  plan.salt = 0xFA17;
  return plan;
}

std::int64_t total_retransmits(ProcessHost& host, const Graph& g) {
  std::int64_t total = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    total += arq_host(host, g.edge(e).u).retransmit_count(e);
    total += arq_host(host, g.edge(e).v).retransmit_count(e);
  }
  return total;
}

RowResult run_row(const RowSpec& spec) {
  RowResult out;
  const Graph g = make_family(spec.family, spec.n, spec.seed);
  const NetworkMeasures m = measure(g);
  const double p = spec.param;
  const FaultInjector inj(drop_dup_plan(p), g, spec.seed);

  RunStats base;
  RunStats faulted;
  bool completed = false;
  std::int64_t retransmits = 0;

  if (spec.algo == "flood") {
    base = run_flood(g, 0, make_exact_delay(), spec.seed).stats;
    const auto factory = [](NodeId v) {
      return std::make_unique<FloodProcess>(v, 0);
    };
    Network net(g, arq_factory(factory), make_exact_delay(), spec.seed);
    net.set_faults(&inj);
    faulted = net.run();
    completed = true;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      completed = completed &&
                  dynamic_cast<FloodProcess&>(arq_inner(net, v)).reached();
    }
    retransmits = total_retransmits(net, g);
  } else {
    RunEnv env;
    env.faults = &inj;
    env.wrap = [](ProcessFactory f) { return arq_factory(std::move(f)); };
    env.unwrap = [](Process& outer) -> Process& {
      return dynamic_cast<ArqHost&>(outer).inner();
    };
    const auto factory = [](NodeId v) {
      return std::make_unique<BroadcastEcho>(v);
    };
    const auto check_echo = [&](const ControlledRun& run) {
      bool ok = dynamic_cast<BroadcastEcho&>(run.inner(0)).done();
      for (NodeId v = 0; v < g.node_count(); ++v) {
        ok = ok && dynamic_cast<BroadcastEcho&>(run.inner(v)).covered();
      }
      return ok;
    };
    if (spec.algo == "echo") {
      base = run_uncontrolled(g, factory, 0, make_exact_delay(), spec.seed)
                 .stats;
      const auto run =
          run_uncontrolled(g, factory, 0, make_exact_delay(), spec.seed,
                           std::numeric_limits<double>::infinity(), env);
      faulted = run.stats;
      completed = check_echo(run);
      retransmits = total_retransmits(*run.network, g);
    } else {  // controller
      const Weight c_pi = 4 * g.total_weight();
      const ControllerConfig cfg{2 * c_pi, /*aggregate=*/true};
      base = run_controlled(g, factory, 0, cfg, make_exact_delay(),
                            spec.seed)
                 .stats;
      const auto run = run_controlled(g, factory, 0, cfg,
                                      make_exact_delay(), spec.seed, env);
      faulted = run.stats;
      // A correct execution must never be cut off by its controller,
      // faults or not. No ControlMeter is attached here, so the permit
      // ledger meters logical sends only and the ARQ layer's cost stays
      // invisible to admission — the metered variant, where that blind
      // spot is closed, is the fault_ctl table.
      completed = check_echo(run) && !run.exhausted;
      retransmits = total_retransmits(*run.network, g);
    }
  }

  report_stats(out, m, faulted);
  add_metric(out, "base_cost", static_cast<double>(base.total_cost()));
  add_metric(out, "retransmits", static_cast<double>(retransmits));
  add_metric(out, "overhead_ratio",
             base.total_cost() != 0
                 ? static_cast<double>(faulted.total_cost()) /
                       static_cast<double>(base.total_cost())
                 : 0);
  add_check(out, "overhead_over_bound",
            static_cast<double>(faulted.total_cost()),
            kArqBaseOverhead * (1.0 + kArqFaultSlope * p) *
                static_cast<double>(base.total_cost()),
            1.0);
  add_check(out, "completed", completed ? 1.0 : 0.0, 1.0, 1.0,
            /*min_ratio=*/1.0);
  return out;
}

}  // namespace

SweepSpec table_fault_degradation() {
  SweepSpec spec;
  spec.table = "fault";
  spec.title = "Reliability degradation - ARQ overhead vs fault rate";
  spec.param_name = "drop";
  spec.run = run_row;
  for (const char* family : {"gnp", "geometric", "grid"}) {
    for (const char* algo : {"flood", "echo", "controller"}) {
      for (const double p : {0.0, 0.01, 0.02, 0.05}) {
        spec.rows.push_back({algo, family, 24, p});
      }
    }
  }
  for (const char* algo : {"flood", "echo", "controller"}) {
    for (const double p : {0.0, 0.01}) {
      spec.smoke_rows.push_back({algo, "gnp", 12, p});
    }
  }
  finalize_rows(spec);
  return spec;
}

}  // namespace csca::bench
