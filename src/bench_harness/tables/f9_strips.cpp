// F9 — Figure 9: the strip method. Sweeping the strip width tau on
// SPT_recur exposes the communication/time dial:
//   small tau  -> many strips: control traffic (tree sweeps) dominates,
//                 but no wasted optimistic offers;
//   large tau  -> one strip: minimal syncs, extra correction offers on
//                 graphs with detours.
// The bound check bills each row its own tau: script-E for the offers
// plus (script-D / tau + 2) tree sweeps of 2n each.
#include "bench_harness/table_common.h"
#include "bench_harness/tables.h"
#include "spt/recur.h"

namespace csca::bench {

namespace {

RowResult run_row(const RowSpec& spec) {
  RowResult out;
  const Graph g = make_family(spec.family, spec.n, spec.seed);
  const NetworkMeasures m = measure(g);
  const auto tau = static_cast<Weight>(spec.param);

  const auto run = run_spt_recur(g, 0, tau, make_exact_delay());
  report_stats(out, m, run.stats);
  add_metric(out, "strips", static_cast<double>(run.strips));
  add_metric(out, "msgs_per_node",
             static_cast<double>(run.stats.total_messages()) /
                 static_cast<double>(m.n));

  // Each strip boundary costs two weighted tree sweeps (~2 w(T) each,
  // proxied by 2 script-V) on top of the script-E offer traffic.
  const double e = static_cast<double>(m.comm_E);
  const double d = static_cast<double>(m.comm_D);
  const double v = static_cast<double>(m.comm_V);
  const double bill =
      e + (d / static_cast<double>(tau) + 2.0) * 2.0 * v;
  // 4.5: at large tau the bill's sweep term vanishes but the wasted
  // optimistic offers on detour-heavy graphs don't — measured ratios
  // peak ~3.6 there (see EXPERIMENTS.md).
  add_check(out, "cost_over_bound",
            static_cast<double>(run.stats.total_cost()), bill, 4.5);
  return out;
}

}  // namespace

SweepSpec table_f9_strips() {
  SweepSpec spec;
  spec.table = "F9";
  spec.title = "Figure 9 - strip method tau sweep";
  spec.param_name = "tau";
  spec.run = run_row;
  for (const char* family : {"gnp", "geometric", "grid"}) {
    for (const int tau : {1, 2, 4, 8, 16, 32, 64, 1 << 20}) {
      spec.rows.push_back({"recur", family, 48, static_cast<double>(tau)});
    }
  }
  for (const int tau : {2, 16}) {
    spec.smoke_rows.push_back({"recur", "gnp", 12, static_cast<double>(tau)});
  }
  finalize_rows(spec);
  return spec;
}

}  // namespace csca::bench
