// F3 — Figure 3: MST algorithms.
//
//   MST_ghs    O(script-E + script-V log n) comm,  same time
//   MST_centr  O(n script-V) comm,  O(n Diam(MST)) time
//   MST_fast   O(script-E log n log script-V) comm,
//              O(Diam(MST) log script-V log n) time
//   MST_hybrid O(min{script-E + script-V log n, n script-V}) comm
//
// The heavy_chords family shows MST_fast's raison d'etre: its *time*
// ratio stays flat where MST_ghs's serial scans stall; the lower_bound
// family shows MST_hybrid tracking the n script-V side.
#include <algorithm>

#include "bench_harness/table_common.h"
#include "bench_harness/tables.h"
#include "conn/mst_centr.h"
#include "graph/mst.h"
#include "mst/ghs.h"
#include "mst/hybrid.h"

namespace csca::bench {

namespace {

RowResult run_row(const RowSpec& spec) {
  RowResult out;
  const Graph g = make_family(spec.family, spec.n, spec.seed);
  const NetworkMeasures m = measure(g);
  const Weight mst_diam = mst_tree(g, 0).diameter(g);

  RunStats stats;
  if (spec.algo == "ghs") {
    stats = run_ghs(g, GhsMode::kSerialScan, make_exact_delay()).stats;
  } else if (spec.algo == "fast") {
    stats = run_ghs(g, GhsMode::kParallelGuess, make_exact_delay()).stats;
  } else if (spec.algo == "centr") {
    stats = run_mst_centr(g, 0, make_exact_delay()).stats;
  } else {
    const auto run = run_mst_hybrid(g, 0, [] { return make_exact_delay(); });
    // The hybrid runs two engines; this local RunStats is a report-row
    // carrier summing their already-charged ledgers, not a live ledger.
    // csca-analyze: allow(COST-2): row carrier aggregating two finished run ledgers
    stats.algorithm_messages = run.total_messages();
    // csca-analyze: allow(COST-2): row carrier aggregating two finished run ledgers
    stats.algorithm_cost = run.total_cost();
    stats.completion_time =
        run.race_stats.completion_time + run.ghs_stats.completion_time;
  }
  report_stats(out, m, stats);
  add_metric(out, "mst_diam", static_cast<double>(mst_diam));

  const double e = static_cast<double>(m.comm_E);
  const double v = static_cast<double>(m.comm_V);
  const double logn = log2n(m.n);
  const double logv = log2n(v);
  const double ghs_bill = e + v * logn;
  const double centr_bill = static_cast<double>(m.n) * v;
  double cost_bound = ghs_bill;
  double time_bound = ghs_bill;
  double cost_tol = 3.0;
  double time_tol = 2.0;
  if (spec.algo == "fast") {
    cost_bound = e * logn * logv;
    time_bound = static_cast<double>(mst_diam) * logv * logn;
    cost_tol = 1.5;
    time_tol = 3.5;  // small-n heavy_chords: log factors still biting
  } else if (spec.algo == "centr") {
    cost_bound = centr_bill;
    time_bound = static_cast<double>(m.n) * static_cast<double>(mst_diam);
    cost_tol = 3.5;
    time_tol = 3.0;
  } else if (spec.algo == "hybrid") {
    cost_bound = std::min(ghs_bill, centr_bill);
    time_bound = cost_bound;  // the paper gives no sharper time claim
    cost_tol = 8.0;
    time_tol = 8.0;
  }
  add_check(out, "cost_over_bound", static_cast<double>(stats.total_cost()),
            cost_bound, cost_tol);
  add_check(out, "time_over_bound", stats.completion_time, time_bound,
            time_tol);
  return out;
}

}  // namespace

SweepSpec table_f3_mst() {
  SweepSpec spec;
  spec.table = "F3";
  spec.title = "Figure 3 - MST algorithms";
  spec.run = run_row;
  for (const char* family :
       {"gnp", "geometric", "heavy_chords", "lower_bound"}) {
    const int n = std::string(family) == "lower_bound" ? 33 : 48;
    for (const char* algo : {"ghs", "fast", "centr", "hybrid"}) {
      spec.rows.push_back({algo, family, n});
    }
  }
  for (const char* algo : {"ghs", "fast", "centr", "hybrid"}) {
    spec.smoke_rows.push_back({algo, "heavy_chords", 12});
  }
  finalize_rows(spec);
  return spec;
}

}  // namespace csca::bench
