// S5 — Corollary 5.1: controller overhead c_phi = O(c_pi log^2 c_pi),
// and containment of diverged protocols.
//
// echo rows sweep the network size (hence c_pi) for the well-behaved
// broadcast-echo; overhead_over_bound must stay a flat small constant.
// The runaway rows are the containment demonstration: the contained
// spammer's total spend stays within a small factor of the budget, while
// the uncontrolled one — checked with min_ratio — must blow PAST the
// same budget (a passing run proves the control was load-bearing).
#include <memory>

#include "bench_harness/table_common.h"
#include "bench_harness/tables.h"
#include "control/controller.h"
#include "control/protocols.h"

namespace csca::bench {

namespace {

RowResult run_echo(const RowSpec& spec) {
  RowResult out;
  const Graph g = make_family(spec.family, spec.n, spec.seed);
  const NetworkMeasures m = measure(g);
  const Weight c_pi = 4 * g.total_weight();
  const bool aggregate = spec.algo == "echo_aggregating";
  const auto run = run_controlled(
      g, [](NodeId v) { return std::make_unique<BroadcastEcho>(v); }, 0,
      ControllerConfig{2 * c_pi, aggregate}, make_exact_delay());
  report_stats(out, m, run.stats);

  const double log_c = log2n(static_cast<double>(c_pi));
  add_metric(out, "c_pi_bound", static_cast<double>(c_pi));
  add_metric(out, "exhausted", run.exhausted ? 1 : 0);
  add_check(out, "overhead_over_bound",
            static_cast<double>(run.stats.control_cost),
            static_cast<double>(c_pi) * log_c * log_c, 1.0);
  return out;
}

RowResult run_runaway(const RowSpec& spec) {
  RowResult out;
  const Graph g = make_family(spec.family, spec.n, spec.seed);
  const NetworkMeasures m = measure(g);
  const Weight budget = 2000;
  if (spec.algo == "runaway_contained") {
    const auto run = run_controlled(
        g, [](NodeId) { return std::make_unique<RunawaySpammer>(); }, 0,
        ControllerConfig{budget, true}, make_exact_delay());
    report_stats(out, m, run.stats);
    add_metric(out, "exhausted", run.exhausted ? 1 : 0);
    add_check(out, "spend_over_budget",
              static_cast<double>(run.stats.algorithm_cost),
              static_cast<double>(budget), 1.5);
  } else {
    const auto run = run_uncontrolled(
        g, [](NodeId) { return std::make_unique<RunawaySpammer>(); }, 0,
        make_exact_delay(), 1, /*max_time=*/3000.0);
    report_stats(out, m, run.stats);
    // min_ratio: the uncontrolled spammer MUST blow past the budget the
    // controlled run respected, or containment proved nothing.
    add_check(out, "spend_over_budget",
              static_cast<double>(run.stats.algorithm_cost),
              static_cast<double>(budget), 1.0e6, /*min_ratio=*/2.0);
  }
  add_metric(out, "budget", static_cast<double>(budget));
  return out;
}

RowResult run_row(const RowSpec& spec) {
  if (spec.algo == "runaway_contained" || spec.algo == "runaway_uncontrolled") {
    return run_runaway(spec);
  }
  return run_echo(spec);
}

}  // namespace

SweepSpec table_s5_controller() {
  SweepSpec spec;
  spec.table = "S5";
  spec.title = "Section 5 - controller overhead and containment";
  spec.run = run_row;
  for (const int n : {12, 24, 48}) {
    spec.rows.push_back({"echo_naive", "gnp", n});
    spec.rows.push_back({"echo_aggregating", "gnp", n});
  }
  spec.rows.push_back({"runaway_contained", "gnp", 16});
  spec.rows.push_back({"runaway_uncontrolled", "gnp", 16});
  spec.smoke_rows.push_back({"echo_naive", "gnp", 12});
  spec.smoke_rows.push_back({"echo_aggregating", "gnp", 12});
  spec.smoke_rows.push_back({"runaway_contained", "gnp", 12});
  spec.smoke_rows.push_back({"runaway_uncontrolled", "gnp", 12});
  finalize_rows(spec);
  return spec;
}

}  // namespace csca::bench
