// F4 — Figure 4: SPT algorithms.
//
//   SPT_centr  O(n w(SPT)) comm, O(n script-D) time
//   SPT_recur  strips: comm grows with sync sweeps, time with strips
//   SPT_synch  O(script-E + script-D k n log n) comm,
//              O(script-D log_k n log n) time
//   SPT_hybrid min of synch and recur
//
// cost_over_bound divides the measured total by each row's claim. All
// four algorithms produce exact distances (cross-checked against
// Dijkstra in the tests).
#include <algorithm>

#include "bench_harness/table_common.h"
#include "bench_harness/tables.h"
#include "conn/spt_centr.h"
#include "spt/hybrid.h"
#include "spt/recur.h"
#include "spt/spt_synch.h"

namespace csca::bench {

namespace {

RowResult run_row(const RowSpec& spec) {
  RowResult out;
  const Graph g = make_family(spec.family, spec.n, spec.seed);
  const NetworkMeasures m = measure(g);

  RunStats stats;
  Weight w_spt = 0;
  if (spec.algo == "centr") {
    const auto run = run_spt_centr(g, 0, make_exact_delay());
    stats = run.stats;
    w_spt = run.tree.weight(g);
  } else if (spec.algo == "recur") {
    const auto run = run_spt_recur(g, 0, 8, make_exact_delay());
    stats = run.stats;
    w_spt = run.tree.weight(g);
  } else if (spec.algo == "synch") {
    const auto run = run_spt_synch(g, 0, 2, make_exact_delay());
    stats = run.async_run.stats;
    w_spt = run.tree.weight(g);
    add_metric(out, "t_pi", static_cast<double>(run.t_pi));
  } else {
    const auto run =
        run_spt_hybrid(g, 0, 2, 8, [] { return make_exact_delay(); });
    // The hybrid races two finished runs; this local RunStats is a
    // report-row carrier for their summed ledgers, not a live ledger.
    // csca-analyze: allow(COST-2): row carrier aggregating two finished run ledgers
    stats.algorithm_cost = run.total_cost();
    // csca-analyze: allow(COST-2): row carrier aggregating two finished run ledgers
    stats.algorithm_messages = run.synch_stats.total_messages() +
                               run.recur_stats.total_messages();
    stats.completion_time = std::max(run.synch_stats.completion_time,
                                     run.recur_stats.completion_time);
    w_spt = run.tree.weight(g);
    add_metric(out, "synch_won", run.synch_won ? 1 : 0);
  }
  report_stats(out, m, stats);
  add_metric(out, "w_spt", static_cast<double>(w_spt));

  // recur's strip boundaries cost weighted tree sweeps (~2 script-V
  // each, see F9); hybrid pays BOTH racers until the winner finishes,
  // so its tolerance over the min-bill carries the loser's spend.
  const double e = static_cast<double>(m.comm_E);
  const double d = static_cast<double>(m.comm_D);
  const double v = static_cast<double>(m.comm_V);
  const double logn = log2n(m.n);
  const double synch_bill = e + d * 2 * m.n * logn;
  const double recur_bill = e + (d / 8 + 2) * 2 * v;
  const double centr_bill =
      static_cast<double>(m.n) * static_cast<double>(w_spt);
  double bound = centr_bill;
  double tolerance = 3.0;
  if (spec.algo == "synch") {
    bound = synch_bill;
    tolerance = 3.5;
  } else if (spec.algo == "recur") {
    bound = recur_bill;
    tolerance = 3.0;
  } else if (spec.algo == "hybrid") {
    bound = std::min(synch_bill, recur_bill);
    tolerance = 8.0;
  }
  add_check(out, "cost_over_bound", static_cast<double>(stats.total_cost()),
            bound, tolerance);
  return out;
}

}  // namespace

SweepSpec table_f4_spt() {
  SweepSpec spec;
  spec.table = "F4";
  spec.title = "Figure 4 - SPT algorithms";
  spec.run = run_row;
  for (const char* family : {"gnp_pow2", "geometric", "grid"}) {
    for (const char* algo : {"centr", "recur", "synch", "hybrid"}) {
      spec.rows.push_back({algo, family, 36});
    }
  }
  for (const char* algo : {"centr", "recur", "synch", "hybrid"}) {
    spec.smoke_rows.push_back({algo, "gnp_pow2", 10});
  }
  finalize_rows(spec);
  return spec;
}

}  // namespace csca::bench
