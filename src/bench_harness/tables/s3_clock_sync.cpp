// S3 — §3 (clock synchronization): measured pulse delay of alpha*,
// beta*, gamma* on heavy-chord networks where d << W — the regime the
// section is about.
//
//   alpha*: pulse delay Theta(W)          (stalls on the heavy chords)
//   beta*:  pulse delay Theta(tree depth) (>= script-D)
//   gamma*: pulse delay O(d log^2 n)      (the §3 headline)
//
// The W sweep is the shape column: gamma*'s max_gap is checked against
// d log^2 n and must NOT grow with W, while alpha*'s is checked against
// W itself.
#include "bench_harness/table_common.h"
#include "bench_harness/tables.h"
#include "graph/shortest_paths.h"
#include "partition/tree_edge_cover.h"
#include "sync/clock_sync.h"

namespace csca::bench {

namespace {

RowResult run_row(const RowSpec& spec) {
  RowResult out;
  const auto heavy = static_cast<Weight>(spec.param);
  const Graph g = heavy_chords_graph(spec.n, heavy);
  const NetworkMeasures m = measure(g);
  const int pulses = 8;

  ClockSyncRun run;
  double bound = 0;
  double tolerance = 1.5;
  if (spec.algo == "alpha") {
    run = run_clock_alpha(g, pulses, make_exact_delay());
    bound = static_cast<double>(m.W);
  } else if (spec.algo == "beta") {
    const auto tree = dijkstra(g, 0).tree(g);
    run = run_clock_beta(g, tree, pulses, make_exact_delay());
    // One downcast + one upcast over the BFS tree per pulse.
    bound = 2.0 * static_cast<double>(tree.height(g));
    tolerance = 2.0;
  } else {
    const auto cover = build_tree_edge_cover(g);
    run = run_clock_gamma(g, cover, pulses, make_exact_delay());
    const double logn = log2n(m.n);
    bound = static_cast<double>(m.d) * logn * logn;
  }
  report_stats(out, m, run.stats);
  add_metric(out, "max_gap", run.max_gap);
  add_metric(out, "mean_gap", run.mean_gap);
  add_metric(out, "gap_over_d", run.max_gap / static_cast<double>(m.d));
  add_metric(out, "gap_over_W", run.max_gap / static_cast<double>(m.W));
  add_metric(out, "cost_per_pulse", run.cost_per_pulse);
  add_check(out, "gap_over_bound", run.max_gap, bound, tolerance);
  return out;
}

}  // namespace

SweepSpec table_s3_clock_sync() {
  SweepSpec spec;
  spec.table = "S3";
  spec.title = "Section 3 - clock synchronization pulse delay";
  spec.param_name = "W";
  spec.run = run_row;
  for (const int heavy : {64, 256, 1024, 4096}) {
    for (const char* algo : {"alpha", "beta", "gamma"}) {
      spec.rows.push_back(
          {algo, "heavy_chords", 24, static_cast<double>(heavy)});
    }
  }
  for (const char* algo : {"alpha", "beta", "gamma"}) {
    spec.smoke_rows.push_back({algo, "heavy_chords", 12, 64.0});
  }
  finalize_rows(spec);
  return spec;
}

}  // namespace csca::bench
