// timewarp — optimistic (Time Warp) vs conservative (ShardEngine)
// backend on zero-lookahead storms (docs/optimistic.md).
//
// The workload is the conservative engine's worst case by design:
// continuous uniform(0,1) delays make every boundary edge's min_delay
// zero, so the CMB lookahead closure is zero and each conservative
// round's safe window degenerates to (roughly) one event — the engine
// pays one full barrier per delivery. The optimistic engine has no
// windows to collapse: each shard speculates up to its quantum between
// barriers and GVT commits the prefix, so the same storm takes orders
// of magnitude fewer rounds.
//
// Two kinds of rows share one grid (same split as scale.cpp):
//
//   * smoke rows (ttl = 3): deterministic metrics only — committed
//     events, both engines' round counts, rollback traffic — plus the
//     ledger-identity checks (committed events and billed cost equal to
//     the conservative run's, which is itself bit-identical to the
//     keyed sequential Network). They run in the ctest conformance tier
//     at any --jobs, so no wall-clock fields.
//   * full rows: additionally report seconds and committed-events/s for
//     both engines, and the grid rows carry the acceptance check
//     committed_eps_vs_shard with min_ratio = 1: the optimistic
//     backend must beat the conservative one on the zero-lookahead
//     storm or the row fails.
//
// Both engines run single-worker (threads = 1): the comparison is the
// synchronization structure (barrier-per-event vs speculate-and-commit)
// at identical compute, not thread scaling — and a single worker keeps
// every reported counter (rounds, rollbacks, speculative events)
// deterministic, which the smoke rows' byte-identical JSON contract
// requires.
#include <algorithm>
#include <chrono>
#include <memory>

#include "bench_harness/table_common.h"
#include "bench_harness/tables.h"
#include "par/shard_engine.h"
#include "par/timewarp_engine.h"

namespace csca::bench {

namespace {

// Everything at or below this ttl is a smoke row (deterministic
// metrics only); above it rows time wall-clock.
constexpr double kTimedTtlFloor = 4;

// The mixed-class TTL storm used across the parallel test suites: node
// 0 seeds every incident edge, each delivery with ttl > 0 re-floods.
// Event count ~ deg^ttl, independent of interleaving.
class Storm final : public Process {
 public:
  explicit Storm(std::int64_t ttl) : ttl_(ttl) {}
  void on_start(Context& ctx) override {
    if (ctx.self() != 0) return;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl_, 0}}, MsgClass::kAlgorithm);
    }
  }
  void on_message(Context& ctx, const Message& m) override {
    const std::int64_t ttl = m.at(0);
    if (ttl <= 0) return;
    const MsgClass cls =
        (ttl % 2 != 0) ? MsgClass::kAlgorithm : MsgClass::kControl;
    for (EdgeId e : ctx.incident()) {
      ctx.send(e, Message{0, {ttl - 1, ctx.self()}}, cls);
    }
  }
  std::unique_ptr<Process> save_state() const override {
    return std::make_unique<Storm>(*this);
  }
  void restore_state(const Process& saved) override {
    *this = dynamic_cast<const Storm&>(saved);
  }

 private:
  std::int64_t ttl_;
};

RowResult run_row(const RowSpec& spec) {
  RowResult out;
  const Graph g = make_family(spec.family, spec.n, spec.seed);
  const std::int64_t ttl = static_cast<std::int64_t>(spec.param);
  const auto factory = [ttl](NodeId) { return std::make_unique<Storm>(ttl); };
  constexpr int kShards = 4;
  const bool timed = spec.param >= kTimedTtlFloor;

  ShardEngine shard(g, factory, make_uniform_delay(0.0, 1.0), spec.seed,
                    ShardEngine::Options{kShards, 1, {}});
  // Wall-clock brackets the runs for the throughput comparison only; it
  // never feeds simulation state (keyed delay draws).
  // csca-analyze: allow(DET-2): throughput bracket, not simulation state
  const auto s0 = std::chrono::steady_clock::now();
  const RunStats shard_stats = shard.run();
  // csca-analyze: allow(DET-2): closes the throughput bracket above.
  const auto s1 = std::chrono::steady_clock::now();

  TimeWarpEngine tw(g, factory, make_uniform_delay(0.0, 1.0), spec.seed,
                    TimeWarpEngine::Options{kShards, 1, 256, {}});
  // csca-analyze: allow(DET-2): throughput bracket, not simulation state
  const auto t0 = std::chrono::steady_clock::now();
  const RunStats tw_stats = tw.run();
  // csca-analyze: allow(DET-2): closes the throughput bracket above.
  const auto t1 = std::chrono::steady_clock::now();

  add_metric(out, "events", static_cast<double>(tw_stats.events));
  add_metric(out, "msgs", static_cast<double>(tw_stats.total_messages()));
  add_metric(out, "cost", static_cast<double>(tw_stats.total_cost()));
  add_metric(out, "time", tw_stats.completion_time);
  add_metric(out, "tw_rounds", static_cast<double>(tw.rounds()));
  add_metric(out, "shard_rounds", static_cast<double>(shard.rounds()));
  add_metric(out, "shard_wave_rounds",
             static_cast<double>(shard.wave_rounds()));
  add_metric(out, "rollbacks", static_cast<double>(tw.rollbacks()));
  add_metric(out, "rolled_back_events",
             static_cast<double>(tw.rolled_back_events()));
  add_metric(out, "anti_messages", static_cast<double>(tw.anti_messages()));
  const double spec_events = static_cast<double>(tw.speculative_events());
  add_metric(out, "commit_efficiency",
             spec_events > 0
                 ? static_cast<double>(tw.committed_events()) / spec_events
                 : 1.0);

  // The ledger-identity gates: the optimistic run commits exactly the
  // conservative run's result (itself bit-identical to the keyed
  // sequential Network), event for event and unit for unit. Integer
  // counters, so the ratio band is exactly [1, 1].
  add_check(out, "committed_events_identical",
            static_cast<double>(tw_stats.events),
            static_cast<double>(shard_stats.events), 1.0, 1.0);
  add_check(out, "committed_cost_identical",
            static_cast<double>(tw_stats.total_cost()),
            static_cast<double>(shard_stats.total_cost()), 1.0, 1.0);

  if (timed) {
    const double shard_secs = std::chrono::duration<double>(s1 - s0).count();
    const double tw_secs = std::chrono::duration<double>(t1 - t0).count();
    const double shard_eps =
        static_cast<double>(shard_stats.events) / std::max(shard_secs, 1e-12);
    const double tw_eps = static_cast<double>(tw.committed_events()) /
                          std::max(tw_secs, 1e-12);
    add_metric(out, "shard_seconds", shard_secs);
    add_metric(out, "tw_seconds", tw_secs);
    add_metric(out, "shard_events_per_sec", shard_eps);
    add_metric(out, "tw_committed_events_per_sec", tw_eps);
    // min_ratio = 1: the row *fails* unless the optimistic backend's
    // committed throughput beats the conservative backend's on this
    // zero-lookahead storm; the huge tolerance leaves the top open.
    // Only the grid rows carry the floor: sparse topology keeps the
    // rollback cascades shallow, which is where optimism pays (3x at
    // the time of recording). The dense gnp row is reported unchecked —
    // its deg^ttl fan-out makes mis-speculation so wide that the
    // conservative engine wins, and the table records that honestly.
    if (spec.family == "grid") {
      add_check(out, "committed_eps_vs_shard", tw_eps, shard_eps, 1e9, 1.0);
    }
  }
  return out;
}

}  // namespace

SweepSpec table_timewarp() {
  SweepSpec spec;
  spec.table = "timewarp";
  spec.title = "Optimistic vs conservative backend - zero-lookahead storms";
  spec.param_name = "ttl";
  spec.run = run_row;
  spec.rows.push_back({"storm", "grid", 256, 6});
  spec.rows.push_back({"storm", "grid", 256, 8});
  spec.rows.push_back({"storm", "gnp", 128, 4});
  spec.smoke_rows.push_back({"storm", "grid", 64, 3});
  spec.smoke_rows.push_back({"storm", "gnp", 48, 3});
  finalize_rows(spec);
  return spec;
}

}  // namespace csca::bench
