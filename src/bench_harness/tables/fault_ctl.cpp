// fault_ctl — ARQ-aware admission control (BENCH_fault_ctl.json).
//
// The fault table (ft_fault.cpp) measures what faults cost; this table
// verifies who *pays*. Each row runs a protocol under the §5 controller
// with the ARQ layer slid underneath and one shared ControlMeter closing
// the admission loop (RunEnv::meter): the root counts the ARQ layer's
// billed control cost — ACKs, retransmits, control-frame first copies —
// as implicitly issued permits. The rows sweep the symmetric drop rate p
// and assert the tentpole invariant plus its paper-style envelope:
//
//   cost_within_permits     total billed cost <= permits_issued. Exact
//                           (tolerance 1.0): algorithm cost consumed
//                           explicit permits, control cost IS the meter.
//   control_within_permits  control cost alone <= permits_issued.
//   permits_over_bound      permits_issued <= kAdmissionHeadroom * R(p)
//                           * c_pi, with R(p) = kArqBaseOverhead * (1 +
//                           kArqFaultSlope * p) — the docs/faults.md ARQ
//                           overhead curve times a flat headroom for
//                           the metered control machinery itself: the
//                           2x Accounting-note issuance slack, the
//                           permit request/grant chains (worst on deep
//                           families like grid, where chains are long
//                           relative to E_w), and the ACK tax the meter
//                           charges on those chains too. The echo rows'
//                           budget is provisioned at exactly this
//                           envelope, so the check also certifies the
//                           provisioning rule: a correct protocol on a
//                           loss-p channel completes within an
//                           R(p)-scaled budget.
//   completed (echo)        the echo still terminates covered and is
//                           never cut off — provisioned admission does
//                           not interfere with correct executions.
//   cut_off (runaway)       the spammer IS cut off, and its total spend
//                           (spend_over_budget) stays within a small
//                           factor of the budget even counting every
//                           retransmit — the blind spot this table
//                           exists to pin closed: without the meter a
//                           retransmit storm spends unboundedly past
//                           the threshold without tripping it.
#include <memory>

#include "bench_harness/table_common.h"
#include "bench_harness/tables.h"
#include "control/controller.h"
#include "control/protocols.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/reliable_link.h"

namespace csca::bench {

namespace {

// The documented ARQ overhead curve R(p); same constants as ft_fault
// (docs/faults.md derives them).
constexpr double kArqBaseOverhead = 2.5;
constexpr double kArqFaultSlope = 10.0;

// Budget headroom over R(p) * c_pi for the control machinery the meter
// now bills: explicit issuance (<= 2x consumption), permit chains, and
// their ACKs. Measured worst case (grid, the deepest family swept) is
// ~6.3 * c_pi at p = 0; 10 * c_pi at p = 0 leaves real margin without
// letting a retransmit storm through unnoticed.
constexpr double kAdmissionHeadroom = 4.0;

double arq_envelope(double p) {
  return kArqBaseOverhead * (1.0 + kArqFaultSlope * p);
}

FaultPlan drop_plan(double p) {
  FaultPlan plan;
  plan.drop_rate = p;
  plan.salt = 0xFA17;
  return plan;
}

// One metered controlled run: controller over ARQ over the wire, with
// the shared meter threaded into both layers.
ControlledRun run_metered(const Graph& g, const DiffusingFactory& factory,
                          const ControllerConfig& cfg,
                          const FaultInjector* inj, std::uint64_t seed) {
  const auto meter = std::make_shared<ControlMeter>();
  RunEnv env;
  env.faults = inj;
  env.meter = meter;
  env.wrap = [meter](ProcessFactory f) {
    ArqConfig arq;
    arq.meter = meter;
    return arq_factory(std::move(f), arq);
  };
  env.unwrap = [](Process& outer) -> Process& {
    return dynamic_cast<ArqHost&>(outer).inner();
  };
  return run_controlled(g, factory, 0, cfg, make_exact_delay(), seed, env);
}

void add_budget_checks(RowResult& out, const ControlledRun& run) {
  const double permits = static_cast<double>(run.permits_issued);
  add_metric(out, "permits_issued", permits);
  add_metric(out, "exhausted", run.exhausted ? 1 : 0);
  add_check(out, "cost_within_permits",
            static_cast<double>(run.stats.total_cost()), permits, 1.0);
  add_check(out, "control_within_permits",
            static_cast<double>(run.stats.control_cost), permits, 1.0);
}

RowResult run_echo(const RowSpec& spec) {
  RowResult out;
  const Graph g = make_family(spec.family, spec.n, spec.seed);
  const NetworkMeasures m = measure(g);
  const double p = spec.param;
  const FaultInjector inj(drop_plan(p), g, spec.seed);

  // Budget provisioned for the channel: c_pi scaled by the expected ARQ
  // overhead at loss rate p plus the control-machinery headroom.
  const Weight c_pi = 4 * g.total_weight();
  const Weight threshold = static_cast<Weight>(
      kAdmissionHeadroom * arq_envelope(p) * static_cast<double>(c_pi));
  ControllerConfig cfg{threshold, /*aggregate=*/true};

  const auto run = run_metered(
      g, [](NodeId v) { return std::make_unique<BroadcastEcho>(v); }, cfg,
      inj.active() ? &inj : nullptr, spec.seed);

  report_stats(out, m, run.stats);
  add_metric(out, "c_pi_bound", static_cast<double>(c_pi));
  add_metric(out, "threshold", static_cast<double>(threshold));
  add_budget_checks(out, run);
  add_check(out, "permits_over_bound",
            static_cast<double>(run.permits_issued),
            kAdmissionHeadroom * arq_envelope(p) * static_cast<double>(c_pi),
            1.0);
  bool completed = !run.exhausted &&
                   dynamic_cast<BroadcastEcho&>(run.inner(0)).done();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    completed = completed &&
                dynamic_cast<BroadcastEcho&>(run.inner(v)).covered();
  }
  add_check(out, "completed", completed ? 1.0 : 0.0, 1.0, 1.0,
            /*min_ratio=*/1.0);
  return out;
}

RowResult run_runaway(const RowSpec& spec) {
  RowResult out;
  const Graph g = make_family(spec.family, spec.n, spec.seed);
  const NetworkMeasures m = measure(g);
  const double p = spec.param;
  const FaultInjector inj(drop_plan(p), g, spec.seed);

  const Weight budget = 2000;
  ControllerConfig cfg{budget, /*aggregate=*/true};
  const auto run = run_metered(
      g, [](NodeId) { return std::make_unique<RunawaySpammer>(); }, cfg,
      inj.active() ? &inj : nullptr, spec.seed);

  report_stats(out, m, run.stats);
  add_metric(out, "budget", static_cast<double>(budget));
  add_budget_checks(out, run);
  // The containment pair: the spammer must hit the budget wall, and its
  // total spend — retransmits and ACKs included, which is the point of
  // metered admission — must stay within a small factor of the budget
  // (grant batches in flight at cutoff plus the ARQ tail account for
  // the slack).
  add_check(out, "cut_off", run.exhausted ? 1.0 : 0.0, 1.0, 1.0,
            /*min_ratio=*/1.0);
  add_check(out, "spend_over_budget",
            static_cast<double>(run.stats.total_cost()),
            static_cast<double>(budget), 2.0);
  return out;
}

RowResult run_row(const RowSpec& spec) {
  return spec.algo == "runaway" ? run_runaway(spec) : run_echo(spec);
}

}  // namespace

SweepSpec table_fault_ctl() {
  SweepSpec spec;
  spec.table = "fault_ctl";
  spec.title = "ARQ-aware admission - permits vs loss rate";
  spec.param_name = "drop";
  spec.run = run_row;
  for (const char* family : {"gnp", "grid"}) {
    for (const double p : {0.0, 0.01, 0.02, 0.05}) {
      spec.rows.push_back({"echo", family, 20, p});
    }
  }
  for (const double p : {0.0, 0.02, 0.05}) {
    spec.rows.push_back({"runaway", "gnp", 16, p});
  }
  for (const double p : {0.0, 0.02}) {
    spec.smoke_rows.push_back({"echo", "gnp", 12, p});
  }
  spec.smoke_rows.push_back({"runaway", "gnp", 12, 0.02});
  finalize_rows(spec);
  return spec;
}

}  // namespace csca::bench
