// F2 — Figure 2: connectivity / spanning tree algorithms.
//
//   DFS        O(script-E) comm,  CON_flood O(script-E) comm / O(D) time
//   MST_centr  O(n script-V)      CON_hybrid O(min{script-E, n script-V})
//
// cost_over_bound divides the measured communication by the row's claim
// and must stay a small constant on every family — including the Figure
// 7 lower-bound family, where script-E explodes and only CON_hybrid
// stays near n script-V.
#include <algorithm>

#include "bench_harness/table_common.h"
#include "bench_harness/tables.h"
#include "conn/dfs.h"
#include "conn/flood.h"
#include "conn/hybrid.h"
#include "conn/mst_centr.h"

namespace csca::bench {

namespace {

RowResult run_row(const RowSpec& spec) {
  RowResult out;
  const Graph g = make_family(spec.family, spec.n, spec.seed);
  const NetworkMeasures m = measure(g);
  RunStats stats;
  if (spec.algo == "flood") {
    stats = run_flood(g, 0, make_exact_delay()).stats;
  } else if (spec.algo == "dfs") {
    stats = run_dfs(g, 0, make_exact_delay()).stats;
  } else if (spec.algo == "mst_centr") {
    stats = run_mst_centr(g, 0, make_exact_delay()).stats;
  } else {
    stats = run_con_hybrid(g, 0, make_exact_delay()).stats;
  }
  report_stats(out, m, stats);

  const double e = static_cast<double>(m.comm_E);
  const double nv = static_cast<double>(m.n) * static_cast<double>(m.comm_V);
  double bound = e;  // flood, dfs
  double tolerance = spec.algo == "dfs" ? 6.0 : 3.0;
  if (spec.algo == "mst_centr") {
    bound = nv;
    tolerance = 3.5;
  } else if (spec.algo == "hybrid") {
    bound = std::min(e, nv);
    tolerance = 8.0;  // the §7.2 factor ~4 plus the loser's final drain
  }
  add_metric(out, "min_E_nV", std::min(e, nv));
  add_check(out, "cost_over_bound", static_cast<double>(stats.total_cost()),
            bound, tolerance);
  return out;
}

}  // namespace

SweepSpec table_f2_connectivity() {
  SweepSpec spec;
  spec.table = "F2";
  spec.title = "Figure 2 - connectivity / spanning tree";
  spec.run = run_row;
  for (const char* family : {"gnp", "geometric", "lower_bound"}) {
    const int n = std::string(family) == "lower_bound" ? 33 : 48;
    for (const char* algo : {"dfs", "flood", "mst_centr", "hybrid"}) {
      spec.rows.push_back({algo, family, n});
    }
  }
  for (const char* algo : {"dfs", "flood", "mst_centr", "hybrid"}) {
    spec.smoke_rows.push_back({algo, "gnp", 12});
  }
  finalize_rows(spec);
  return spec;
}

}  // namespace csca::bench
