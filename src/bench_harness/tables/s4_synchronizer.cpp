// S4 — Lemma 4.8: the amortized per-pulse overhead of synchronizer
// gamma_w,
//   C_p = O(k n log n)       (control cost per pulse)
//   T_p = O(log_k n log n)   (time dilation per pulse)
// measured against alpha and beta hosting the same in-synch flooding
// protocol on normalized networks with heavy chords (log W levels).
// alpha's per-pulse control cost carries the full script-E (it cleans
// every link every pulse); gamma_w's collapses because heavy levels run
// rarely. The k sweep shows gamma's communication/time dial.
#include <cstdint>
#include <memory>

#include "bench_harness/table_common.h"
#include "bench_harness/tables.h"
#include "sim/sync_engine.h"
#include "sync/protocols.h"
#include "sync/synchronizer.h"

namespace csca::bench {

namespace {

RowResult run_row(const RowSpec& spec) {
  RowResult out;
  const Graph g = normalized_chords_graph(spec.n, spec.seed);
  const NetworkMeasures m = measure(g);
  const int k = static_cast<int>(spec.param);
  const auto factory = [](NodeId v) {
    return std::make_unique<InSynchFlood>(v, 0);
  };
  SyncEngine ref(g, factory, /*enforce_in_synch=*/true);
  const RunStats pi = ref.run();
  const auto t_pi = static_cast<std::int64_t>(pi.completion_time) + 1;

  SynchronizerKind sk = SynchronizerKind::kGammaW;
  if (spec.algo == "alpha") sk = SynchronizerKind::kAlpha;
  if (spec.algo == "beta") sk = SynchronizerKind::kBeta;
  SynchronizedNetwork net(g, factory, sk, k, t_pi, make_exact_delay());
  const SynchronizerRun run = net.run();
  report_stats(out, m, run.stats);

  const double tp = static_cast<double>(t_pi);
  const double logn = log2n(m.n);
  const double c_p = static_cast<double>(run.stats.control_cost) / tp;
  add_metric(out, "t_pi", tp);
  add_metric(out, "c_pi", static_cast<double>(pi.algorithm_cost));
  add_metric(out, "C_p", c_p);
  add_metric(out, "T_p", run.stats.completion_time / tp);
  add_metric(out, "finished", run.hosted_all_finished ? 1 : 0);

  // Lemma 4.8's C_p bound for gamma_w; alpha pays script-E both ways per
  // pulse, beta two sweeps of its spanning tree.
  double bound = static_cast<double>(k) * m.n * logn;
  if (spec.algo == "alpha") {
    bound = 2.0 * static_cast<double>(m.comm_E);
  } else if (spec.algo == "beta") {
    bound = 4.0 * static_cast<double>(m.n);
  }
  // 1.2: initialization traffic amortizes into the first pulses, so
  // alpha sits a hair above its steady-state 2 script-E.
  add_check(out, "C_p_over_bound", c_p, bound, 1.2);
  return out;
}

}  // namespace

SweepSpec table_s4_synchronizer() {
  SweepSpec spec;
  spec.table = "S4";
  spec.title = "Section 4 - synchronizer gamma_w per-pulse overhead";
  spec.param_name = "k";
  spec.run = run_row;
  spec.rows.push_back({"alpha", "normalized_chords", 24, 2.0});
  spec.rows.push_back({"beta", "normalized_chords", 24, 2.0});
  for (const int k : {2, 4, 8}) {
    spec.rows.push_back(
        {"gamma_w", "normalized_chords", 24, static_cast<double>(k)});
  }
  for (const char* algo : {"alpha", "beta", "gamma_w"}) {
    spec.smoke_rows.push_back({algo, "normalized_chords", 10, 2.0});
  }
  finalize_rows(spec);
  return spec;
}

}  // namespace csca::bench
