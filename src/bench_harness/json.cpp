#include "bench_harness/json.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace csca::bench {

std::string format_double(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void render_check(std::ostringstream& os, const BoundCheck& c) {
  os << "{\"name\": \"" << json_escape(c.name) << "\", \"measured\": "
     << format_double(c.measured) << ", \"bound\": "
     << format_double(c.bound) << ", \"ratio\": "
     << format_double(c.ratio()) << ", \"tolerance\": "
     << format_double(c.tolerance);
  if (c.min_ratio > 0) {
    os << ", \"min_ratio\": " << format_double(c.min_ratio);
  }
  os << ", \"pass\": " << (c.pass() ? "true" : "false") << "}";
}

void render_row(std::ostringstream& os, const TableResult& table,
                const RowResult& row) {
  const RowSpec& s = row.spec;
  os << "    {\"name\": \"" << json_escape(s.name(table.param_name))
     << "\",\n     \"algo\": \"" << json_escape(s.algo)
     << "\", \"family\": \"" << json_escape(s.family)
     << "\", \"n\": " << s.n << ", \"seed\": " << s.seed;
  if (!table.param_name.empty()) {
    os << ", \"" << json_escape(table.param_name)
       << "\": " << format_double(s.param);
  }
  if (row.failed) {
    os << ",\n     \"error\": \"" << json_escape(row.error) << "\"";
  }
  os << ",\n     \"measured\": {";
  for (std::size_t i = 0; i < row.measured.size(); ++i) {
    if (i > 0) os << ", ";
    os << "\"" << json_escape(row.measured[i].name)
       << "\": " << format_double(row.measured[i].value);
  }
  os << "},\n     \"checks\": [";
  for (std::size_t i = 0; i < row.checks.size(); ++i) {
    if (i > 0) os << ",\n                ";
    render_check(os, row.checks[i]);
  }
  os << "],\n     \"pass\": " << (row.pass() ? "true" : "false") << "}";
}

}  // namespace

std::string render_table_json(const TableResult& table) {
  std::ostringstream os;
  os << "{\n  \"table\": \"" << json_escape(table.table)
     << "\",\n  \"title\": \"" << json_escape(table.title)
     << "\",\n  \"smoke\": " << (table.smoke ? "true" : "false")
     << ",\n  \"pass\": " << (table.pass() ? "true" : "false")
     << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < table.rows.size(); ++i) {
    render_row(os, table, table.rows[i]);
    os << (i + 1 < table.rows.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  return os.str();
}

std::string write_table_json(const std::string& dir,
                             const TableResult& table) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // ok if it exists
  const std::string path = dir + "/BENCH_" + table.table + ".json";
  std::ofstream out(path);
  if (!out) return "";
  out << render_table_json(table);
  return out ? path : "";
}

}  // namespace csca::bench
