// Deterministic JSON rendering of sweep results — the BENCH_<id>.json
// schema every table emits:
//
//   {
//     "table": "F3", "title": "...", "smoke": false, "pass": true,
//     "rows": [
//       { "name": "ghs/gnp/n=48",
//         "algo": "ghs", "family": "gnp", "n": 48, "seed": 1234,
//         "q": 2,                             // when the table has a knob
//         "measured": {"cost": 123, "time": 45, ...},
//         "checks": [ {"name": "cost_over_bound", "measured": 123,
//                      "bound": 100, "ratio": 1.23, "tolerance": 2.5,
//                      "pass": true} ],
//         "pass": true } ] }
//
// Rendering is pure string formatting over TableResult (%.10g doubles,
// fixed key order), so equal results render byte-identically — the
// contract the --jobs determinism tests diff on.
#pragma once

#include <string>

#include "bench_harness/sweep.h"

namespace csca::bench {

/// %.10g with non-finite values mapped to JSON null.
std::string format_double(double value);

std::string json_escape(const std::string& text);

/// The full BENCH_<id>.json document for one table.
std::string render_table_json(const TableResult& table);

/// Writes render_table_json to <dir>/BENCH_<table>.json, creating dir if
/// needed. Returns the path written, or "" on I/O failure.
std::string write_table_json(const std::string& dir,
                             const TableResult& table);

}  // namespace csca::bench
