// The shared command-line front end for table sweeps. tools/csca_sweep
// drives every table; each bench/bench_*.cpp is a thin main that passes
// its own default table subset. Flags:
//
//   --table=ID    sweep only this table (repeatable; overrides defaults)
//   --smoke       the small-n conformance grids instead of the full ones
//   --jobs=N      worker threads (output is byte-identical for every N)
//   --out-dir=P   where BENCH_<id>.json files land (default bench_out)
//   --list        print the table registry and exit
//
// Exit status: 0 when every bound check passes, 1 when any row fails or
// errors, 2 on bad usage.
#pragma once

#include <string>
#include <vector>

namespace csca::bench {

int sweep_main(const std::vector<std::string>& default_tables, int argc,
               char** argv);

}  // namespace csca::bench
