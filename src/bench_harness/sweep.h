// The unified table/figure sweep harness.
//
// Every complexity table the repo reproduces (Figures 1-9, the §3-§5
// section claims, the cover ablation) is expressed as one SweepSpec: a
// declarative row grid (algorithm subject x graph family x size x knob)
// plus one row function that runs the simulated algorithm and reports
// the measured cost-sensitive metrics *and* the paper's claimed bound
// for that row as BoundChecks with stored tolerances. SweepRunner
// executes the rows through par::RunPool — results merge in submission
// order, every row derives its seed purely from its identity, and the
// run output (including the rendered JSON, see json.h) is byte-identical
// at any --jobs value.
//
// The bench binaries (bench/bench_*.cpp), the tools/csca_sweep front
// end, and the ctest `conformance` tier all drive the same SweepSpecs
// (tables.h), so "measured stays inside the claimed bound" is a
// machine-checked regression assertion, not prose.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace csca::bench {

/// One point of a sweep grid. `param` is the table's free knob (q, tau,
/// W, k, ...); the owning SweepSpec names it in param_name ("" = none).
struct RowSpec {
  std::string algo;
  std::string family;
  int n = 0;
  double param = 0;
  /// Deterministic per-row stream seed; derived from the row identity by
  /// finalize_rows, never from execution order or thread id.
  std::uint64_t seed = 0;

  /// "algo/family/n=48" (+ "/q=2" when the table names a param).
  std::string name(const std::string& param_name) const;
};

/// A named measured quantity (simulated cost/time/messages and
/// table-specific extras — never wall-clock in table sweeps).
struct Metric {
  std::string name;
  double value = 0;
};

/// One measured-vs-claimed assertion: the paper's bound formula
/// evaluated for this row, the measurement it bounds, and the recorded
/// tolerance on the ratio. `min_ratio` is for rows whose *point* is to
/// exceed a bound (e.g. the uncontrolled runaway protocol).
struct BoundCheck {
  std::string name;
  double measured = 0;
  double bound = 0;
  double tolerance = 0;   ///< max allowed measured/bound
  double min_ratio = 0;   ///< min required measured/bound (usually 0)

  double ratio() const { return bound != 0 ? measured / bound : 0; }
  bool pass() const {
    const double r = ratio();
    return r <= tolerance && r >= min_ratio;
  }
};

/// The outcome of one row: what was measured and how it compares to the
/// claims. `failed` records an exception escaping the row function.
struct RowResult {
  RowSpec spec;
  std::vector<Metric> measured;
  std::vector<BoundCheck> checks;
  bool failed = false;
  std::string error;

  bool pass() const;
  /// The named metric's value, or `fallback` when absent.
  double metric(const std::string& name, double fallback = 0) const;
};

using RowFn = std::function<RowResult(const RowSpec&)>;

/// One table: identity, the declarative row grids, and the row function.
struct SweepSpec {
  std::string table;       ///< "F3", "S4", ... — keys BENCH_<id>.json
  std::string title;
  std::string param_name;  ///< "" when the table has no extra knob
  std::vector<RowSpec> rows;        ///< the full reproduction sweep
  std::vector<RowSpec> smoke_rows;  ///< small-n conformance subset
  RowFn run;

  const std::vector<RowSpec>& selected(bool smoke) const {
    return smoke ? smoke_rows : rows;
  }
};

/// The result of sweeping one table.
struct TableResult {
  std::string table;
  std::string title;
  std::string param_name;
  bool smoke = false;
  std::vector<RowResult> rows;

  bool pass() const;
  int check_count() const;
  int failed_check_count() const;
};

/// Seed for a row: a pure function of (table, algo, family, n, param) —
/// independent of row order, job count, and sibling rows.
std::uint64_t row_seed(const std::string& table, const RowSpec& spec);

/// Assigns row_seed to every row (full and smoke grids). Table builders
/// call this last, so grid edits never reshuffle unrelated seeds.
void finalize_rows(SweepSpec& spec);

/// Executes SweepSpecs row by row through a RunPool. Rows are
/// independent by construction (each builds its own graph from its own
/// seed), so results are identical at every jobs value; map() returns
/// them in submission order, making the whole TableResult — and the
/// JSON rendered from it — byte-identical at --jobs=1 vs --jobs=N.
class SweepRunner {
 public:
  struct Options {
    int jobs = 1;
    bool smoke = false;
  };

  explicit SweepRunner(const Options& options);

  TableResult run(const SweepSpec& spec) const;

  /// Runs several tables through one worker pool: all rows of all
  /// tables form a single work list, so small tables do not serialize
  /// behind large ones. Results group back per table, in spec order.
  std::vector<TableResult> run_all(const std::vector<SweepSpec>& specs) const;

 private:
  Options options_;
};

}  // namespace csca::bench
