// Demonstrates the paper's weighted synchronizer gamma_w (§4): a
// synchronous protocol written for a network where every message on edge
// e takes exactly w(e) time, executed unchanged on a fully asynchronous
// network — with heavy links "cleaned" only once per w(e) pulses so the
// overhead amortizes (Lemma 4.8).
//
//   ./synchronizer_demo
#include <cstdio>

#include "graph/generators.h"
#include "graph/measures.h"
#include "sim/sync_engine.h"
#include "sync/protocols.h"
#include "sync/synchronizer.h"

using namespace csca;

int main() {
  // A light ring with two heavy chords, normalized weights (powers of 2).
  const int n = 16;
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n, 1);
  g.add_edge(0, n / 2, 64);
  g.add_edge(3, 3 + n / 2, 32);
  const NetworkMeasures m = measure(g);
  std::printf("normalized network: n=%d, W=%lld, d=%lld\n\n", n,
              static_cast<long long>(m.W), static_cast<long long>(m.d));

  // The synchronous protocol: in-synch flooding from node 0; each vertex
  // records the pulse at which the wave reached it.
  const auto factory = [](NodeId v) {
    return std::make_unique<InSynchFlood>(v, 0);
  };

  // Reference execution on the weighted synchronous engine.
  SyncEngine ref(g, factory, /*enforce_in_synch=*/true);
  const RunStats pi = ref.run();
  const auto t_pi = static_cast<std::int64_t>(pi.completion_time) + 1;
  std::printf("synchronous reference: c_pi=%lld, t_pi=%lld pulses\n",
              static_cast<long long>(pi.algorithm_cost),
              static_cast<long long>(t_pi));

  // The same protocol under each synchronizer on the asynchronous net.
  struct Row {
    const char* name;
    SynchronizerKind kind;
  };
  const Row rows[] = {
      {"alpha (clean every link, every pulse)", SynchronizerKind::kAlpha},
      {"beta  (tree convergecast per pulse)", SynchronizerKind::kBeta},
      {"gamma_w (per-level, amortized)", SynchronizerKind::kGammaW},
  };
  std::printf("\n%-40s %12s %10s %8s\n", "synchronizer", "control cost",
              "C_p", "T_p");
  for (const Row& r : rows) {
    SynchronizedNetwork net(g, factory, r.kind, 2, t_pi,
                            make_exact_delay());
    const SynchronizerRun run = net.run();
    // Sanity: the hosted protocol saw exactly the synchronous execution.
    for (NodeId v = 0; v < n; ++v) {
      const auto got = net.hosted_as<InSynchFlood>(v).reached_at();
      const auto want = ref.process_as<InSynchFlood>(v).reached_at();
      if (got != want) {
        std::printf("MISMATCH at node %d: %lld vs %lld\n", v,
                    static_cast<long long>(got),
                    static_cast<long long>(want));
        return 1;
      }
    }
    std::printf("%-40s %12lld %10.1f %8.2f\n", r.name,
                static_cast<long long>(run.stats.control_cost),
                static_cast<double>(run.stats.control_cost) /
                    static_cast<double>(t_pi),
                run.stats.completion_time / static_cast<double>(t_pi));
  }
  std::printf(
      "\nAll three produce the identical synchronous execution "
      "(Lemma 4.4); gamma_w's\nper-pulse time dilation T_p collapses "
      "because heavy links are cleaned once\nper w(e) pulses instead of "
      "every pulse (Lemma 4.8).\n");
  return 0;
}
