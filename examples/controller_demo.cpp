// Demonstrates the §5 controller: the same diverged protocol, with and
// without metering. The controller's permit mechanism never interferes
// with the well-behaved broadcast-echo, but cuts the runaway spammer off
// near the budget — at O(c_pi log^2 c_pi) control overhead (Cor. 5.1).
//
//   ./controller_demo
#include <cstdio>

#include "control/controller.h"
#include "control/protocols.h"
#include "graph/generators.h"

using namespace csca;

int main() {
  Rng rng(5);
  const Graph g = connected_gnp(16, 0.3, WeightSpec::uniform(1, 12), rng);
  std::printf("network: n=%d m=%d  script-E=%lld\n\n", g.node_count(),
              g.edge_count(), static_cast<long long>(g.total_weight()));

  // 1. A correct protocol under the controller: unaffected.
  const Weight c_pi = 4 * g.total_weight();
  const auto echo = run_controlled(
      g, [](NodeId v) { return std::make_unique<BroadcastEcho>(v); }, 0,
      ControllerConfig{2 * c_pi, /*aggregate=*/true}, make_exact_delay());
  std::printf("broadcast-echo, threshold 2*c_pi = %lld:\n",
              static_cast<long long>(2 * c_pi));
  std::printf("  completed: %s   protocol cost: %lld   permit "
              "overhead: %lld\n\n",
              echo.exhausted ? "NO" : "yes",
              static_cast<long long>(echo.stats.algorithm_cost),
              static_cast<long long>(echo.stats.control_cost));

  // 2. A diverged protocol: first uncontrolled (bounded only by the
  // simulation window), then contained by the controller.
  const auto spam_factory = [](NodeId) {
    return std::make_unique<RunawaySpammer>();
  };
  const auto wild = run_uncontrolled(g, spam_factory, 0,
                                     make_exact_delay(), 1,
                                     /*max_time=*/2000.0);
  const Weight budget = 1500;
  const auto tamed = run_controlled(g, spam_factory, 0,
                                    ControllerConfig{budget, true},
                                    make_exact_delay());
  std::printf("runaway spammer:\n");
  std::printf("  uncontrolled (first 2000 time units): cost %lld and "
              "climbing\n",
              static_cast<long long>(wild.stats.algorithm_cost));
  std::printf("  controlled  (budget %lld): cost %lld, permits issued "
              "%lld, suspended: %s\n",
              static_cast<long long>(budget),
              static_cast<long long>(tamed.stats.algorithm_cost),
              static_cast<long long>(tamed.permits_issued),
              tamed.exhausted ? "yes" : "no");
  return 0;
}
