// Step-by-step walkthrough of the Figure 5 SLT algorithm, mirroring the
// example run of Figure 6: prints the MST, its Euler line L, the
// breakpoint scan, the grafted SPT paths, and the resulting tree's
// weight/depth against the Lemma 2.4/2.5 bounds.
//
//   ./slt_walkthrough
#include <cstdio>

#include "core/slt.h"
#include "graph/measures.h"
#include "graph/mst.h"
#include "graph/shortest_paths.h"
#include "graph/traversal.h"

using namespace csca;

int main() {
  // The [BKJ83]-flavored bad case for pure trees: a light path (the MST)
  // whose far end is close to the root through direct heavier edges.
  const int n = 10;
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, 2);
  for (NodeId v = 3; v < n; v += 2) {
    g.add_edge(0, v, 2 * v - 1);  // direct edge, just below path distance
  }
  const auto m = measure(g);
  std::printf("graph: n=%d m=%d  V=%lld  D=%lld\n\n", n, g.edge_count(),
              static_cast<long long>(m.comm_V),
              static_cast<long long>(m.comm_D));

  // Step 1: the two pure trees.
  const RootedTree tm = mst_tree(g, 0);
  const RootedTree ts = dijkstra(g, 0).tree(g);
  std::printf("MST  T_M: weight=%lld depth=%lld   (light but deep)\n",
              static_cast<long long>(tm.weight(g)),
              static_cast<long long>(tm.height(g)));
  std::printf("SPT  T_S: weight=%lld depth=%lld   (shallow but heavy)\n\n",
              static_cast<long long>(ts.weight(g)),
              static_cast<long long>(ts.height(g)));

  // Step 2-3: the line L (the MST's Euler tour).
  const auto tour = euler_tour(g, tm);
  std::printf("Euler line L:");
  for (NodeId v : tour) std::printf(" %d", v);
  std::printf("\n\n");

  // Steps 4-6 for a few values of q.
  for (double q : {0.5, 2.0, 8.0}) {
    const auto slt = build_slt(g, 0, q);
    std::printf("q=%.1f: breakpoints at line positions [", q);
    for (std::size_t i = 0; i < slt.breakpoints.size(); ++i) {
      std::printf("%s%d", i ? " " : "", slt.breakpoints[i]);
    }
    int grafted = 0;
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      if (slt.subgraph_edges[static_cast<std::size_t>(e)] &&
          !(tm.contains(g.edge(e).u) &&
            tm.parent_edge(g.edge(e).u) == e) &&
          !(tm.contains(g.edge(e).v) &&
            tm.parent_edge(g.edge(e).v) == e)) {
        ++grafted;
      }
    }
    std::printf("], %d grafted non-MST edges\n", grafted);
    std::printf(
        "        weight=%lld  <= (1+2/q)V = %.0f      depth=%lld  <= "
        "(2q+1)D = %.0f\n",
        static_cast<long long>(slt.weight(g)),
        (1.0 + 2.0 / q) * static_cast<double>(m.comm_V),
        static_cast<long long>(slt.depth(g)),
        (2.0 * q + 1.0) * static_cast<double>(m.comm_D));
  }
  std::printf(
      "\nSmall q grafts more shortcut paths (shallow, heavier); large q "
      "trusts the\nMST (light, deeper) — the Figure 6 picture.\n");
  return 0;
}
