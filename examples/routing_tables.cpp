// Scenario: building next-hop routing tables — the application [ABLP89]
// that §1.4.3 names as a beneficiary of weighted synchronizers. Each
// gateway runs SPT_synch (synchronous Bellman-Ford under gamma_w); the
// resulting trees yield per-destination next hops, which we then verify
// by walking every route and checking it realizes the exact weighted
// distance.
//
//   ./routing_tables
#include <cstdio>

#include "graph/generators.h"
#include "graph/measures.h"
#include "graph/shortest_paths.h"
#include "spt/spt_synch.h"

using namespace csca;

int main() {
  Rng rng(31);
  const Graph g = random_geometric(40, 0.3, 50, rng);
  const auto m = measure(g);
  std::printf("WAN: n=%d m=%d  D=%lld\n", m.n, m.m,
              static_cast<long long>(m.comm_D));

  const std::vector<NodeId> gateways{0, 13, 27};
  // next_hop[gw][v] = neighbor of v on its shortest path toward gw.
  std::vector<std::vector<NodeId>> next_hop;
  Weight total_cost = 0;
  double total_time = 0;

  for (NodeId gw : gateways) {
    const auto run = run_spt_synch(g, gw, 2, make_exact_delay());
    total_cost += run.async_run.stats.total_cost();
    total_time += run.async_run.stats.completion_time;
    std::vector<NodeId> hops(static_cast<std::size_t>(g.node_count()),
                             kNoNode);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v == gw) continue;
      hops[static_cast<std::size_t>(v)] =
          g.other(run.tree.parent_edge(v), v);
    }
    next_hop.push_back(std::move(hops));
  }

  // Verify every route hop-by-hop against Dijkstra.
  int routes = 0;
  for (std::size_t i = 0; i < gateways.size(); ++i) {
    const auto sp = dijkstra(g, gateways[i]);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      Weight walked = 0;
      NodeId cur = v;
      while (cur != gateways[i]) {
        const NodeId nh = next_hop[i][static_cast<std::size_t>(cur)];
        walked += g.weight(g.find_edge(cur, nh));
        cur = nh;
      }
      if (walked != sp.dist[static_cast<std::size_t>(v)]) {
        std::printf("BROKEN ROUTE %d -> %d\n", v, gateways[i]);
        return 1;
      }
      ++routes;
    }
  }
  std::printf("built and verified %d routes to %zu gateways\n", routes,
              gateways.size());
  std::printf("construction: comm cost %lld, time %.0f "
              "(one SPT_synch per gateway)\n",
              static_cast<long long>(total_cost), total_time);
  return 0;
}
