// Runs every distributed algorithm in the library on one network and
// prints the cost-sensitive ledger of each — a one-screen version of the
// paper's Figures 2-4.
//
//   ./protocol_comparison
#include <cstdio>

#include "conn/dfs.h"
#include "conn/flood.h"
#include "conn/hybrid.h"
#include "conn/mst_centr.h"
#include "conn/spt_centr.h"
#include "graph/generators.h"
#include "graph/measures.h"
#include "mst/ghs.h"
#include "mst/hybrid.h"
#include "spt/recur.h"
#include "spt/spt_synch.h"

using namespace csca;

namespace {
void row(const char* name, const RunStats& stats) {
  std::printf("%-22s %10lld %14lld %14.0f\n", name,
              static_cast<long long>(stats.total_messages()),
              static_cast<long long>(stats.total_cost()),
              stats.completion_time);
}
}  // namespace

int main() {
  Rng rng(11);
  const Graph g = connected_gnp(32, 0.2, WeightSpec::uniform(1, 24), rng);
  const NetworkMeasures m = measure(g);
  std::printf("network: n=%d m=%d  E=%lld V=%lld D=%lld W=%lld\n\n", m.n,
              m.m, static_cast<long long>(m.comm_E),
              static_cast<long long>(m.comm_V),
              static_cast<long long>(m.comm_D),
              static_cast<long long>(m.W));
  std::printf("%-22s %10s %14s %14s\n", "algorithm", "messages",
              "comm cost", "time");
  std::printf("-- connectivity / spanning tree (Figure 2) --\n");
  row("CON_flood", run_flood(g, 0, make_exact_delay()).stats);
  row("DFS", run_dfs(g, 0, make_exact_delay()).stats);
  row("CON_hybrid", run_con_hybrid(g, 0, make_exact_delay()).stats);

  std::printf("-- minimum spanning trees (Figure 3) --\n");
  row("MST_ghs",
      run_ghs(g, GhsMode::kSerialScan, make_exact_delay()).stats);
  row("MST_fast",
      run_ghs(g, GhsMode::kParallelGuess, make_exact_delay()).stats);
  row("MST_centr", run_mst_centr(g, 0, make_exact_delay()).stats);
  {
    const auto run =
        run_mst_hybrid(g, 0, [] { return make_exact_delay(); });
    RunStats s;
    s.algorithm_messages = run.total_messages();
    s.algorithm_cost = run.total_cost();
    s.completion_time = run.race_stats.completion_time +
                        run.ghs_stats.completion_time;
    row(run.used_ghs ? "MST_hybrid (via ghs)" : "MST_hybrid (via centr)",
        s);
  }

  std::printf("-- shortest path trees (Figure 4) --\n");
  row("SPT_centr", run_spt_centr(g, 0, make_exact_delay()).stats);
  row("SPT_recur (tau=8)",
      run_spt_recur(g, 0, 8, make_exact_delay()).stats);
  {
    const auto run = run_spt_synch(g, 0, 2, make_exact_delay());
    row("SPT_synch (k=2)", run.async_run.stats);
    std::printf("%-22s   (protocol c_pi=%lld over t_pi=%lld pulses; "
                "rest is synchronizer overhead)\n",
                "", static_cast<long long>(run.sync_stats.algorithm_cost),
                static_cast<long long>(run.t_pi));
  }
  return 0;
}
