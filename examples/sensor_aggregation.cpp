// Scenario: periodic aggregation in a geographically spread sensor
// network (the traffic-load-aware setting the paper's introduction
// motivates). Link weights grow with distance, so the choice of
// aggregation tree matters: the MST minimizes per-round cost but can be
// very deep (slow rounds); the SPT minimizes latency but wastes
// bandwidth; the shallow-light tree gets both within constants
// (Theorem 2.2). This example measures all three over many aggregation
// rounds.
//
//   ./sensor_aggregation
#include <cstdio>

#include "core/global_compute.h"
#include "core/slt.h"
#include "graph/generators.h"
#include "graph/measures.h"
#include "graph/mst.h"
#include "graph/shortest_paths.h"

using namespace csca;

int main() {
  Rng rng(2024);
  // 60 sensors in the unit square; links within radio range, weight =
  // scaled euclidean distance.
  const Graph g = random_geometric(60, 0.25, 100, rng);
  const NetworkMeasures m = measure(g);
  std::printf("sensor field: n=%d m=%d  V=%lld  D=%lld\n", m.n, m.m,
              static_cast<long long>(m.comm_V),
              static_cast<long long>(m.comm_D));

  struct Row {
    const char* name;
    RootedTree tree;
  };
  const NodeId sink = 0;
  Row rows[] = {
      {"MST", mst_tree(g, sink)},
      {"SPT", dijkstra(g, sink).tree(g)},
      {"SLT(q=2)", build_slt(g, sink, 2.0).tree},
  };

  std::printf("\n%-10s %12s %12s %14s %14s\n", "tree", "w(T)", "depth",
              "cost/round", "time/round");
  Rng inputs_rng(7);
  std::vector<std::int64_t> readings(60);
  for (auto& x : readings) x = inputs_rng.uniform_int(0, 1000);

  for (const Row& row : rows) {
    const auto run = run_global_compute(g, row.tree, functions::sum(),
                                        readings, make_exact_delay());
    std::printf("%-10s %12lld %12lld %14lld %14.0f\n", row.name,
                static_cast<long long>(row.tree.weight(g)),
                static_cast<long long>(row.tree.height(g)),
                static_cast<long long>(run.stats.total_cost()),
                run.completion_time);
  }

  std::printf(
      "\nThe SLT's cost/round tracks the MST's while its time/round "
      "tracks the SPT's\n(Lemmas 2.4-2.5: w(T) <= (1+2/q) V, depth <= "
      "(2q+1) D).\n");
  return 0;
}
