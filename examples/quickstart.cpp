// Quickstart: the library in one page.
//
// Builds a small weighted network, constructs a shallow-light tree (the
// paper's central object), and computes a global minimum over it with the
// optimal O(script-V) communication / O(script-D) time of Figure 1.
//
//   ./quickstart
#include <cstdio>

#include "core/global_compute.h"
#include "core/slt.h"
#include "graph/measures.h"

using namespace csca;

int main() {
  // A nine-node network: a light ring with two heavy shortcuts. Weights
  // are both the transmission cost and the worst-case delay of an edge.
  Graph g(9);
  for (NodeId v = 0; v < 9; ++v) g.add_edge(v, (v + 1) % 9, 2);
  g.add_edge(0, 4, 30);
  g.add_edge(2, 7, 25);

  const NetworkMeasures m = measure(g);
  std::printf("network: n=%d m=%d\n", m.n, m.m);
  std::printf("  script-E (total weight)     = %lld\n",
              static_cast<long long>(m.comm_E));
  std::printf("  script-V (MST weight)       = %lld\n",
              static_cast<long long>(m.comm_V));
  std::printf("  script-D (weighted diameter)= %lld\n",
              static_cast<long long>(m.comm_D));

  // A shallow-light tree: weight <= (1 + 2/q) V, depth <= (2q + 1) D.
  const double q = 2.0;
  const ShallowLightTree slt = build_slt(g, /*root=*/0, q);
  std::printf("\nSLT(q=%.1f): weight=%lld (V=%lld), depth=%lld (D=%lld)\n",
              q, static_cast<long long>(slt.weight(g)),
              static_cast<long long>(m.comm_V),
              static_cast<long long>(slt.depth(g)),
              static_cast<long long>(m.comm_D));

  // Each vertex holds one input; compute the global minimum at every
  // vertex by convergecast + broadcast over the SLT.
  const std::vector<std::int64_t> inputs{41, 7, 19, 88, 3, 56, 12, 71, 9};
  const GlobalComputeRun run = run_global_compute(
      g, slt.tree, functions::min(), inputs, make_exact_delay());

  std::printf("\nglobal min = %lld\n", static_cast<long long>(run.result));
  std::printf("  messages           = %lld\n",
              static_cast<long long>(run.stats.total_messages()));
  std::printf("  communication cost = %lld   (2 w(T), Theorem 2.1 lower "
              "bound is V = %lld)\n",
              static_cast<long long>(run.stats.total_cost()),
              static_cast<long long>(m.comm_V));
  std::printf("  completion time    = %.0f   (D = %lld)\n",
              run.completion_time, static_cast<long long>(m.comm_D));
  return 0;
}
