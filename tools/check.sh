#!/usr/bin/env bash
# Full verification gate: tier-1 suite in the normal configuration,
# the same suite under ASan+UBSan, and the engine bench in smoke mode.
#
# Usage: tools/check.sh [--no-sanitize]   (run from the repo root)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
RUN_SANITIZE=1
[[ "${1:-}" == "--no-sanitize" ]] && RUN_SANITIZE=0

echo "== tier-1: plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "$RUN_SANITIZE" == 1 ]]; then
  echo "== tier-1: ASan+UBSan build =="
  cmake -B build-asan -S . -DCSCA_SANITIZE=ON >/dev/null
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

echo "== engine bench (smoke) =="
./build/bench/bench_engine --smoke --out=build/BENCH_engine.json

echo "check.sh: all gates passed"
