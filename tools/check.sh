#!/usr/bin/env bash
# Full verification gate: tier-1 suite with warnings promoted to errors,
# the same suite under ASan+UBSan, the lint pass, and the engine bench in
# smoke mode. The protocol-analysis sweep (csca_check --smoke) runs as a
# ctest entry in both configurations.
#
# Usage: tools/check.sh [--no-sanitize] [--no-lint]   (from the repo root)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
RUN_SANITIZE=1
RUN_LINT=1
for arg in "$@"; do
  case "$arg" in
    --no-sanitize) RUN_SANITIZE=0 ;;
    --no-lint) RUN_LINT=0 ;;
    *) echo "usage: tools/check.sh [--no-sanitize] [--no-lint]" >&2
       exit 2 ;;
  esac
done

echo "== tier-1: plain build (-Werror) =="
cmake -B build -S . -DCSCA_WERROR=ON >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "$RUN_SANITIZE" == 1 ]]; then
  echo "== tier-1: ASan+UBSan build =="
  cmake -B build-asan -S . -DCSCA_SANITIZE=ON -DCSCA_WERROR=ON >/dev/null
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

if [[ "$RUN_LINT" == 1 ]]; then
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== lint (clang-tidy) =="
    tools/lint.sh build
  else
    echo "== lint: SKIPPED (clang-tidy not on PATH; install it or pass --no-lint to silence this) =="
  fi
fi

echo "== engine bench (smoke) =="
./build/bench/bench_engine --smoke --out=build/BENCH_engine.json

echo "check.sh: all gates passed"
