#!/usr/bin/env bash
# Full verification gate: tier-1 suite with warnings promoted to errors,
# the same suite under ASan+UBSan, the parallel suite under TSan, the
# static-analysis gate (csca_analyze over src/ tools/ bench/; see
# docs/analysis.md), the lint pass, and the engine + capacity benches
# in smoke mode. The protocol-analysis
# sweep (csca_check --smoke) runs as a ctest entry in both
# configurations, then again here sequentially vs parallelized to show
# the multi-run harness wall-clock side by side, and once more under a
# builtin fault plan (plain + sharded; the TSan leg repeats the sharded
# faulted run) to gate the fault-injection hooks. The fault smoke also
# drives the metered fault_ctl table (csca_sweep --table=fault_ctl)
# sequentially, at --jobs N with a byte-for-byte diff, and again in the
# TSan leg, so a drifting admission bound fails with its row named. The
# table-sweep gate
# runs the conformance tier (ctest -L conformance), then csca_sweep's
# smoke grids at --jobs=1 vs --jobs=N and diffs the BENCH_<id>.json
# trees byte for byte.
#
# Usage: tools/check.sh [--jobs N] [--no-sanitize] [--no-tsan] [--no-lint]
#                       [--no-analyze]
# (from the repo root). --jobs caps build parallelism and is forwarded
# to csca_check --jobs for the harness timing comparison.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
RUN_SANITIZE=1
RUN_TSAN=1
RUN_LINT=1
RUN_ANALYZE=1
while [[ $# -gt 0 ]]; do
  case "$1" in
    --jobs) shift
            [[ $# -gt 0 && "$1" =~ ^[0-9]+$ && "$1" -ge 1 ]] || {
              echo "check.sh: --jobs needs a positive integer" >&2; exit 2; }
            JOBS="$1" ;;
    --jobs=*) JOBS="${1#--jobs=}"
              [[ "$JOBS" =~ ^[0-9]+$ && "$JOBS" -ge 1 ]] || {
                echo "check.sh: --jobs needs a positive integer" >&2; exit 2; } ;;
    --no-sanitize) RUN_SANITIZE=0 ;;
    --no-tsan) RUN_TSAN=0 ;;
    --no-lint) RUN_LINT=0 ;;
    --no-analyze) RUN_ANALYZE=0 ;;
    *) echo "usage: tools/check.sh [--jobs N] [--no-sanitize] [--no-tsan] [--no-lint] [--no-analyze]" >&2
       exit 2 ;;
  esac
  shift
done

echo "== tier-1: plain build (-Werror) =="
cmake -B build -S . -DCSCA_WERROR=ON >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "$RUN_ANALYZE" == 1 ]]; then
  echo "== static analysis (csca_analyze; docs/analysis.md) =="
  # The determinism & cost-accounting analyzer over every scanned root.
  # Prints the finding count even when clean; exits nonzero on any
  # unsuppressed finding. The analyze ctest tier re-runs the analyzer's
  # own fixture corpus + self-scan.
  ./build/tools/csca_analyze src tools bench
  ctest --test-dir build -L analyze --output-on-failure -j "$JOBS"
fi

echo "== protocol sweep: sequential vs multi-run harness (--jobs $JOBS) =="
./build/tools/csca_check --smoke
./build/tools/csca_check --smoke --jobs="$JOBS"
./build/tools/csca_check --smoke --shards=2

echo "== fault smoke: portfolio under a 1% drop plan (see docs/faults.md) =="
./build/tools/csca_check --smoke --faults=drop1pct
./build/tools/csca_check --smoke --faults=drop1pct --shards=2

echo "== fault smoke: ARQ-aware admission table (fault_ctl) =="
# The metered-controller grid: permits vs loss rate, each row bound by
# the R(p) retransmission envelope. A drifting row fails csca_sweep by
# name; the --jobs run must reproduce the sequential JSON byte for byte.
./build/tools/csca_sweep --smoke --table=fault_ctl --out-dir=build/fault_ctl_j1
./build/tools/csca_sweep --smoke --table=fault_ctl --jobs="$JOBS" \
  --out-dir=build/fault_ctl_jN
diff build/fault_ctl_j1/BENCH_fault_ctl.json build/fault_ctl_jN/BENCH_fault_ctl.json \
  || { echo "check.sh: fault_ctl output differs across --jobs" >&2; exit 1; }

echo "== timewarp smoke: optimistic backend (docs/optimistic.md) =="
# The optimistic (Time Warp) backend over the same smoke portfolio the
# shard runs cover above, plus its dedicated ctest tier (calendar
# queue, rollback torture, GVT/fossil properties, bit-identity matrix)
# and the timewarp table's smoke grid at --jobs 1 vs N byte for byte.
./build/tools/csca_check --smoke --backend=timewarp --shards=2
./build/tools/csca_check --smoke --backend=timewarp --shards=4 \
  --faults=drop1pct
ctest --test-dir build -L timewarp --output-on-failure -j "$JOBS"
./build/tools/csca_sweep --smoke --table=timewarp --out-dir=build/timewarp_j1
./build/tools/csca_sweep --smoke --table=timewarp --jobs="$JOBS" \
  --out-dir=build/timewarp_jN
diff build/timewarp_j1/BENCH_timewarp.json build/timewarp_jN/BENCH_timewarp.json \
  || { echo "check.sh: timewarp output differs across --jobs" >&2; exit 1; }

echo "== churn smoke: dynamic topology + restabilization (docs/faults.md) =="
# The churn tier: churn-plan semantics, the cross-engine churn
# determinism matrix, byzantine containment, and the restabilizing
# recovery driver — then the portfolio composed with a builtin churn
# plan on each backend, and the churn table's recovery-cost envelope at
# --jobs 1 vs N byte for byte.
ctest --test-dir build -L churn --output-on-failure -j "$JOBS"
./build/tools/csca_check --smoke --churn=edge_churn
./build/tools/csca_check --smoke --churn=full_churn --faults=drop1pct --shards=2
./build/tools/csca_check --smoke --churn=node_churn --backend=timewarp --shards=2
./build/tools/csca_sweep --smoke --table=churn --out-dir=build/churn_j1
./build/tools/csca_sweep --smoke --table=churn --jobs="$JOBS" \
  --out-dir=build/churn_jN
diff build/churn_j1/BENCH_churn.json build/churn_jN/BENCH_churn.json \
  || { echo "check.sh: churn output differs across --jobs" >&2; exit 1; }

echo "== table sweep: conformance tier + --jobs byte-identity =="
ctest --test-dir build -L conformance --output-on-failure -j "$JOBS"
./build/tools/csca_sweep --list
./build/tools/csca_sweep --smoke --jobs=1 --out-dir=build/sweep_j1
./build/tools/csca_sweep --smoke --jobs="$JOBS" --out-dir=build/sweep_jN
diff -r build/sweep_j1 build/sweep_jN \
  || { echo "check.sh: csca_sweep output differs across --jobs" >&2; exit 1; }

if [[ "$RUN_SANITIZE" == 1 ]]; then
  echo "== tier-1: ASan+UBSan build =="
  cmake -B build-asan -S . -DCSCA_SANITIZE=ON -DCSCA_WERROR=ON >/dev/null
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

if [[ "$RUN_TSAN" == 1 ]]; then
  # TSan needs compiler/runtime support (libtsan); probe before
  # configuring so unsupported toolchains skip with a notice instead of
  # failing the gate.
  if echo 'int main(){return 0;}' | c++ -fsanitize=thread -x c++ - \
       -o /tmp/csca_tsan_probe.$$ 2>/dev/null \
     && /tmp/csca_tsan_probe.$$ 2>/dev/null; then
    rm -f /tmp/csca_tsan_probe.$$
    echo "== parallel suite: TSan build (par_test + timewarp_test + churn_test + faulted shard run) =="
    cmake -B build-tsan -S . -DCSCA_TSAN=ON -DCSCA_WERROR=ON >/dev/null
    cmake --build build-tsan -j "$JOBS" --target par_test timewarp_test churn_test csca_check_tool csca_sweep
    ./build-tsan/tests/par_test
    ./build-tsan/tests/timewarp_test
    # The churn tier's cross-engine matrix (ShardEngine + TimeWarp under
    # liveness churn, RunPool-mapped cells) under the race detector.
    ./build-tsan/tests/churn_test
    ./build-tsan/tools/csca_check --smoke --faults=drop1pct --shards=2
    # The optimistic backend's cross-shard paths (anti-message channels,
    # GVT reduction, fossil frees) under the race detector.
    ./build-tsan/tools/csca_check --smoke --backend=timewarp --shards=2
    # The metered fault_ctl grid with parallel rows: ARQ retransmit
    # billing feeds the admission counter across RunPool workers, so
    # this is the data-race-sensitive path of the fault smoke.
    ./build-tsan/tools/csca_sweep --smoke --table=fault_ctl --jobs=2 \
      --out-dir=build-tsan/fault_ctl
  else
    rm -f /tmp/csca_tsan_probe.$$
    echo "== parallel suite: TSan SKIPPED (toolchain lacks -fsanitize=thread support) =="
  fi
fi

if [[ "$RUN_LINT" == 1 ]]; then
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== lint (clang-tidy) =="
    tools/lint.sh build
  else
    echo "== lint: SKIPPED (clang-tidy not on PATH; install it or pass --no-lint to silence this) =="
  fi
fi

echo "== engine bench (smoke) =="
./build/bench/bench_engine --smoke --out=build/BENCH_engine.json \
  --par-out=build/BENCH_parallel.json

echo "== capacity bench (scale table, smoke; docs/scale.md) =="
# Deterministic small-n rows of the scale table (the full 10^6-node
# rows run via bench_scale/csca_sweep without --smoke). Prints the
# state/graph bytes-per-node split and the process peak RSS.
./build/bench/bench_scale --smoke --out-dir=build/scale_smoke

echo "check.sh: all gates passed"
