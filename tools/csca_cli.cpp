// Command-line front end: run the paper's algorithms on a network read
// from an edge-list file (see graph/io.h for the format) and print the
// cost-sensitive ledger.
//
// Usage:
//   csca_cli measures  <graph>            weighted parameters E/V/D/d/W
//   csca_cli mst       <graph>            GHS; prints MST edges + leader
//   csca_cli spt       <graph> <src>      SPT_synch distances from src
//   csca_cli slt       <graph> <root> <q> shallow-light tree + DOT
//   csca_cli flood     <graph> <root>     broadcast; tree + ledger
//   csca_cli count     <graph>            leader election + counting
//   csca_cli clock     <graph> <pulses>   gamma* pulse delay
//
// Use "-" as <graph> to read from stdin.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "conn/flood.h"
#include "core/slt.h"
#include "graph/io.h"
#include "graph/measures.h"
#include "mst/applications.h"
#include "partition/tree_edge_cover.h"
#include "spt/spt_synch.h"
#include "sync/clock_sync.h"

using namespace csca;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: csca_cli "
               "{measures|mst|spt|slt|flood|count|clock} <graph> "
               "[args...]\n       (see the header of tools/csca_cli.cpp "
               "for details; <graph> = edge-list file or '-')\n");
  return 2;
}

Graph load(const std::string& path) {
  if (path == "-") return read_edge_list(std::cin);
  std::ifstream in(path);
  require(static_cast<bool>(in), "cannot open graph file: " + path);
  return read_edge_list(in);
}

void print_ledger(const RunStats& stats) {
  std::printf("messages: %lld   comm cost: %lld   time: %.0f\n",
              static_cast<long long>(stats.total_messages()),
              static_cast<long long>(stats.total_cost()),
              stats.completion_time);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    const Graph g = load(argv[2]);

    if (cmd == "measures") {
      const auto m = measure(g);
      std::printf("n=%d m=%d\nscript-E=%lld\nscript-V=%lld\n"
                  "script-D=%lld\nd=%lld\nW=%lld\n",
                  m.n, m.m, static_cast<long long>(m.comm_E),
                  static_cast<long long>(m.comm_V),
                  static_cast<long long>(m.comm_D),
                  static_cast<long long>(m.d),
                  static_cast<long long>(m.W));
      return 0;
    }
    if (cmd == "mst") {
      const auto run = run_ghs(g, GhsMode::kSerialScan,
                               make_exact_delay());
      std::printf("MST edges:");
      for (EdgeId e : run.mst_edges) {
        std::printf(" (%d-%d)", g.edge(e).u, g.edge(e).v);
      }
      std::printf("\nweight: %lld   leader: %d\n",
                  static_cast<long long>(total_weight(g, run.mst_edges)),
                  run.leader);
      print_ledger(run.stats);
      return 0;
    }
    if (cmd == "spt" && argc >= 4) {
      const NodeId src = std::stoi(argv[3]);
      const auto run = run_spt_synch(g, src, 2, make_exact_delay());
      for (NodeId v = 0; v < g.node_count(); ++v) {
        std::printf("dist(%d, %d) = %lld\n", src, v,
                    static_cast<long long>(
                        run.dist[static_cast<std::size_t>(v)]));
      }
      print_ledger(run.async_run.stats);
      return 0;
    }
    if (cmd == "slt" && argc >= 5) {
      const NodeId root = std::stoi(argv[3]);
      const double q = std::stod(argv[4]);
      const auto slt = build_slt(g, root, q);
      const auto m = measure(g);
      std::printf("# SLT(q=%g): weight=%lld (V=%lld)  depth=%lld "
                  "(D=%lld)\n",
                  q, static_cast<long long>(slt.weight(g)),
                  static_cast<long long>(m.comm_V),
                  static_cast<long long>(slt.depth(g)),
                  static_cast<long long>(m.comm_D));
      DotOptions opts;
      opts.highlight = slt.tree.edge_set();
      std::fputs(to_dot(g, opts).c_str(), stdout);
      return 0;
    }
    if (cmd == "flood" && argc >= 4) {
      const NodeId root = std::stoi(argv[3]);
      const auto run = run_flood(g, root, make_exact_delay());
      std::printf("broadcast tree depth: %lld\n",
                  static_cast<long long>(run.tree.height(g)));
      print_ledger(run.stats);
      return 0;
    }
    if (cmd == "count") {
      const auto run =
          run_counting(g, [] { return make_exact_delay(); });
      std::printf("leader: %d   count: %lld\n", run.leader,
                  static_cast<long long>(run.count));
      print_ledger(run.ghs_stats);
      return 0;
    }
    if (cmd == "clock" && argc >= 4) {
      const int pulses = std::stoi(argv[3]);
      const auto cover = build_tree_edge_cover(g);
      const auto run =
          run_clock_gamma(g, cover, pulses, make_exact_delay());
      const auto m = measure(g);
      std::printf("gamma* over %d pulses: max gap %.0f  mean gap %.1f  "
                  "(d=%lld, W=%lld)\n",
                  pulses, run.max_gap, run.mean_gap,
                  static_cast<long long>(m.d),
                  static_cast<long long>(m.W));
      print_ledger(run.stats);
      return 0;
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
