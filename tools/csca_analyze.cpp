// csca_analyze — the determinism & cost-accounting static analyzer
// front end (docs/analysis.md).
//
// Scans the given directories (default: src tools bench) for
// violations of the repo's determinism and ledger contracts, prints a
// human report, optionally writes the deterministic JSON report, and
// exits nonzero when any unsuppressed finding remains. Wired into
// tools/check.sh as a gate and into ctest as the `analyze` tier.
//
// Usage:
//   csca_analyze [--repo-root=DIR] [--json=PATH] [--list-rules] [DIR...]
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/analyzer.h"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--repo-root=DIR] [--json=PATH] [--list-rules] [DIR...]\n"
               "  scans DIR... (default: src tools bench) relative to "
               "--repo-root (default: .)\n"
               "  exit status: 0 clean, 1 findings, 2 usage/io error\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  csca::analyze::AnalyzerConfig cfg;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : csca::analyze::rule_table()) {
        std::cout << r.id << "  " << r.summary << "\n";
      }
      return 0;
    }
    if (arg.rfind("--repo-root=", 0) == 0) {
      cfg.repo_root = arg.substr(12);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      cfg.roots.push_back(arg);
    }
  }
  if (cfg.roots.empty()) cfg.roots = {"src", "tools", "bench"};

  csca::analyze::Report report;
  try {
    report = csca::analyze::analyze(cfg);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  std::cout << csca::analyze::to_text(report);
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "csca_analyze: cannot write " << json_path << "\n";
      return 2;
    }
    out << csca::analyze::to_json(report);
  }
  return report.clean() ? 0 : 1;
}
