#!/usr/bin/env bash
# clang-tidy over the library sources, using the compile database the
# build exports (CMAKE_EXPORT_COMPILE_COMMANDS is always on; see the
# top-level CMakeLists.txt). Checks and naming rules live in .clang-tidy.
#
# Usage: tools/lint.sh [build-dir]   (default build/; run from anywhere)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

TIDY="$(command -v clang-tidy || true)"
if [[ -z "$TIDY" ]]; then
  echo "lint.sh: clang-tidy not found on PATH" >&2
  exit 1
fi
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "lint.sh: $BUILD_DIR/compile_commands.json missing;" \
       "configure first: cmake -B $BUILD_DIR -S ." >&2
  exit 1
fi

# Library sources only: tests and benches follow gtest/benchmark idiom
# (macro-generated names) that the naming rules are not written for.
mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
echo "lint.sh: clang-tidy over ${#SOURCES[@]} sources ($BUILD_DIR)"
"$TIDY" -p "$BUILD_DIR" --quiet "${SOURCES[@]}"
echo "lint.sh: clean"
