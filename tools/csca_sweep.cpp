// The unified sweep front end: drives every registered reproduction
// table (F1-F9, S3-S5, A1 — see src/bench_harness/tables.h) through the
// shared SweepRunner and writes one BENCH_<id>.json per table in the
// common schema.
//
//   csca_sweep                         # full sweep of every table
//   csca_sweep --smoke                 # the small-n conformance grids
//   csca_sweep --table=F3 --table=F4   # a subset
//   csca_sweep --jobs=8                # parallel rows; output is
//                                      # byte-identical to --jobs=1
//   csca_sweep --out-dir=results       # where the JSON lands
//   csca_sweep --list                  # print the table registry
//
// Exit status: 0 when every bound check passes, 1 when any row fails,
// 2 on bad usage.
#include "bench_harness/driver.h"

int main(int argc, char** argv) {
  return csca::bench::sweep_main({}, argc, argv);
}
