// Protocol analysis sweep: replay every built-in protocol subject over
// a set of generator graph families under the full schedule portfolio
// (check/schedule_check.h) and report invariant violations, digest
// divergences, and errors. Exits nonzero on any finding.
//
// Usage:
//   csca_check [--smoke] [--subject=NAME] [--family=NAME]
//              [--faults=PLAN] [--churn=PLAN] [--jobs=N] [--shards=K]
//              [--list] [--list-plans] [--help] [-v]
//
//   --smoke          tiny graphs (the ctest gate; seconds, ASan-safe)
//   --subject=NAME   only the named subject (see --list)
//   --family=NAME    only the named graph family
//   --faults=PLAN    run every schedule under the named builtin fault
//                    plan (see --list-plans). Protocol degradation
//                    (wrong oracle answers, unterminated runs, ensure()
//                    failures) is reported as "degraded" and does not
//                    fail the sweep — only invariant violations and
//                    errors do. Each sweep line then reports how many
//                    runs completed and how many fully terminated.
//   --churn=PLAN     compose the named builtin churn plan's liveness
//                    intervals into every run (edge down/up spans,
//                    node leave/join absences). Composable with
//                    --faults; switches to degraded-mode reporting the
//                    same way.
//   --list-plans     print fault and churn plans with one-line
//                    descriptions, run nothing
//   --jobs=N         run (subject, family) sweeps on N worker threads;
//                    output and exit code are identical to --jobs=1
//                    (results merge in submission order)
//   --shards=K       replay subjects on a parallel engine with K shards
//                    instead of the sequential engine
//   --backend=NAME   which parallel engine --shards uses: "shard" (the
//                    conservative default) or "timewarp" (optimistic
//                    rollback + GVT commit). Digests and ledgers are
//                    engine-independent, so the report means the same
//                    thing either way.
//   --list           print subjects and families, run nothing
//   -v               per-(subject, family) digest lines even when clean
//
// A reported finding names its (subject, family, schedule, seed)
// quadruple; re-running with --subject/--family filters replays it
// exactly (schedules are deterministic given name + seed, and each
// sweep is self-contained, so --jobs never changes what a run sees).
// See docs/checking.md and docs/parallel.md.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "check/subjects.h"
#include "fault/churn_plan.h"
#include "fault/fault_plan.h"
#include "par/run_pool.h"

using namespace csca;

namespace {

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: csca_check [--smoke] [--subject=NAME] "
               "[--family=NAME] [--faults=PLAN] [--churn=PLAN] [--jobs=N] "
               "[--shards=K] [--backend=shard|timewarp] [--list] "
               "[--list-plans] [--help] [-v]\n");
  std::fprintf(out, "fault plans:");
  for (const auto& n : builtin_fault_plan_names()) {
    std::fprintf(out, " %s", n.c_str());
  }
  std::fprintf(out, "\nchurn plans:");
  for (const auto& n : builtin_churn_plan_names()) {
    std::fprintf(out, " %s", n.c_str());
  }
  std::fprintf(out, "\n(--list-plans prints one-line descriptions)\n");
}

int usage() {
  print_usage(stderr);
  return 2;
}

int list_plans() {
  std::printf("fault plans:\n");
  for (const auto& n : builtin_fault_plan_names()) {
    std::printf("  %-12s %s\n", n.c_str(),
                builtin_fault_plan_description(n).c_str());
  }
  std::printf("churn plans:\n");
  for (const auto& n : builtin_churn_plan_names()) {
    std::printf("  %-12s %s\n", n.c_str(),
                builtin_churn_plan_description(n).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool list = false;
  bool verbose = false;
  int jobs = 1;
  int shards = 0;
  ParBackend backend = ParBackend::kShard;
  std::string backend_name = "shard";
  std::string only_subject;
  std::string only_family;
  std::string faults_name;
  std::string churn_name;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--list-plans") {
      return list_plans();
    } else if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg == "-v") {
      verbose = true;
    } else if (arg.rfind("--subject=", 0) == 0) {
      only_subject = arg.substr(std::strlen("--subject="));
    } else if (arg.rfind("--family=", 0) == 0) {
      only_family = arg.substr(std::strlen("--family="));
    } else if (arg.rfind("--faults=", 0) == 0) {
      faults_name = arg.substr(std::strlen("--faults="));
    } else if (arg.rfind("--churn=", 0) == 0) {
      churn_name = arg.substr(std::strlen("--churn="));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = std::atoi(arg.c_str() + std::strlen("--jobs="));
      if (jobs < 1) return usage();
    } else if (arg.rfind("--shards=", 0) == 0) {
      shards = std::atoi(arg.c_str() + std::strlen("--shards="));
      if (shards < 1) return usage();
    } else if (arg.rfind("--backend=", 0) == 0) {
      backend_name = arg.substr(std::strlen("--backend="));
      if (backend_name == "shard") {
        backend = ParBackend::kShard;
      } else if (backend_name == "timewarp") {
        backend = ParBackend::kTimeWarp;
      } else {
        return usage();
      }
    } else {
      return usage();
    }
  }

  try {
    const std::vector<CheckSubject> subjects = builtin_subjects();
    const std::vector<GraphFamily> families = builtin_families(smoke);
    std::vector<ScheduleSpec> portfolio = default_portfolio();

    if (list) {
      std::printf("subjects:");
      for (const auto& s : subjects) std::printf(" %s", s.name.c_str());
      std::printf("\nfamilies:");
      for (const auto& f : families) std::printf(" %s", f.name.c_str());
      std::printf("\nschedules:");
      for (const auto& p : portfolio) std::printf(" %s", p.name.c_str());
      std::printf("\nfault plans:");
      for (const auto& n : builtin_fault_plan_names()) {
        std::printf(" %s", n.c_str());
      }
      std::printf("\nchurn plans:");
      for (const auto& n : builtin_churn_plan_names()) {
        std::printf(" %s", n.c_str());
      }
      std::printf("\n");
      return 0;
    }

    if (!faults_name.empty()) {
      // Validate the name eagerly (against a throwaway graph) so a typo
      // fails here, not inside every sweep.
      bool known = false;
      for (const auto& n : builtin_fault_plan_names()) {
        known = known || n == faults_name;
      }
      if (!known) {
        std::fprintf(stderr, "csca_check: unknown fault plan \"%s\" "
                             "(see --list-plans)\n",
                     faults_name.c_str());
        return 2;
      }
      for (ScheduleSpec& spec : portfolio) {
        spec.make_faults = [faults_name](const Graph& g) {
          FaultPlan plan = make_builtin_fault_plan(faults_name, g);
          // Named validation errors surface per sweep with the graph
          // they were materialized against.
          plan.validate(g);
          return plan;
        };
      }
    }
    if (!churn_name.empty()) {
      bool known = false;
      for (const auto& n : builtin_churn_plan_names()) {
        known = known || n == churn_name;
      }
      if (!known) {
        std::fprintf(stderr, "csca_check: unknown churn plan \"%s\" "
                             "(see --list-plans)\n",
                     churn_name.c_str());
        return 2;
      }
      for (ScheduleSpec& spec : portfolio) {
        spec.make_churn = [churn_name](const Graph& g) {
          ChurnPlan churn = make_builtin_churn_plan(churn_name, g);
          churn.validate(g);
          return churn;
        };
      }
    }

    // Materialize the work list up front; each sweep is independent, so
    // the pool runs them in any order while map() hands the reports
    // back in submission order — byte-identical output at every N.
    struct Sweep {
      const CheckSubject* subject;
      const GraphFamily* family;
    };
    std::vector<Sweep> sweeps;
    for (const CheckSubject& subject : subjects) {
      if (!only_subject.empty() && subject.name != only_subject) continue;
      for (const GraphFamily& family : families) {
        if (!only_family.empty() && family.name != only_family) continue;
        sweeps.push_back({&subject, &family});
      }
    }
    if (sweeps.empty()) {
      std::fprintf(stderr, "csca_check: no (subject, family) matched "
                           "the filters\n");
      return 2;
    }

    // csca-analyze: allow(DET-2): harness wall-clock for the reported sweep duration; never feeds simulation state
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<ScheduleCheckReport> reports;
    if (jobs == 1) {
      reports.reserve(sweeps.size());
      for (const Sweep& s : sweeps) {
        reports.push_back(check_subject(*s.subject, s.family->graph,
                                        s.family->name, portfolio, shards,
                                        backend));
      }
    } else {
      RunPool pool(jobs);
      reports = pool.map(sweeps.size(), [&](std::size_t i) {
        const Sweep& s = sweeps[i];
        return check_subject(*s.subject, s.family->graph, s.family->name,
                             portfolio, shards, backend);
      });
    }
    const double wall =
        // csca-analyze: allow(DET-2): harness wall-clock for the reported sweep duration; never feeds simulation state
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const bool fault_mode = !faults_name.empty() || !churn_name.empty();
    int runs = 0;
    std::vector<CheckFinding> findings;
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
      const Sweep& s = sweeps[i];
      const ScheduleCheckReport& report = reports[i];
      runs += report.runs;
      if (fault_mode) {
        // The point of a fault sweep: which subjects still run to
        // completion, which still terminate everywhere, and how many
        // *runs* degraded. runs_degraded counts each run once; tallying
        // degraded findings here would count one noisy run (many oracle
        // mismatch lines) as several.
        std::printf("%-10s %-8s %s  completed %d/%d, all-finished %d, "
                    "degraded %d\n",
                    s.subject->name.c_str(), s.family->name.c_str(),
                    report.ok() ? "ok " : "FAIL", report.runs_completed,
                    report.runs, report.runs_all_finished,
                    report.runs_degraded);
      } else if (verbose || !report.ok()) {
        std::printf("%-10s %-8s %-3d schedules  %s  %s\n",
                    s.subject->name.c_str(), s.family->name.c_str(),
                    report.runs, report.ok() ? "ok " : "FAIL",
                    report.reference_digest.c_str());
      }
      findings.insert(findings.end(), report.findings.begin(),
                      report.findings.end());
    }

    std::size_t hard_findings = 0;
    for (const CheckFinding& f : findings) {
      const bool hard = f.kind != "degraded";
      if (hard) ++hard_findings;
      // Degraded detail lines only with -v: a fault sweep over a flaky
      // channel produces them by design.
      if (!hard && !verbose) continue;
      std::printf("FINDING [%s] %s on %s under schedule %s (seed %llu): "
                  "%s\n",
                  f.kind.c_str(), f.subject.c_str(), f.graph.c_str(),
                  f.schedule.c_str(),
                  static_cast<unsigned long long>(f.seed),
                  f.detail.c_str());
    }
    std::string engine_note =
        shards > 0
            ? ", " + std::to_string(shards) + " shards (" + backend_name + ")"
            : "";
    if (!faults_name.empty()) engine_note += ", faults=" + faults_name;
    if (!churn_name.empty()) engine_note += ", churn=" + churn_name;
    std::printf("csca_check: %d runs (%zu sweeps x %zu schedules%s), "
                "%zu finding(s) (%zu degraded)%s [%d job(s), %.2fs]\n",
                runs, sweeps.size(), portfolio.size(), engine_note.c_str(),
                findings.size(), findings.size() - hard_findings,
                hard_findings == 0 ? " -- all clean" : "", jobs, wall);
    return hard_findings == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "csca_check: error: %s\n", e.what());
    return 2;
  }
}
