// Protocol analysis sweep: replay every built-in protocol subject over
// a set of generator graph families under the full schedule portfolio
// (check/schedule_check.h) and report invariant violations, digest
// divergences, and errors. Exits nonzero on any finding.
//
// Usage:
//   csca_check [--smoke] [--subject=NAME] [--family=NAME] [--list] [-v]
//
//   --smoke          tiny graphs (the ctest gate; seconds, ASan-safe)
//   --subject=NAME   only the named subject (see --list)
//   --family=NAME    only the named graph family
//   --list           print subjects and families, run nothing
//   -v               per-(subject, family) digest lines even when clean
//
// A reported finding names its (subject, family, schedule, seed)
// quadruple; re-running with --subject/--family filters replays it
// exactly (schedules are deterministic given name + seed). See
// docs/checking.md.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "check/subjects.h"
#include "graph/generators.h"

using namespace csca;

namespace {

struct Family {
  std::string name;
  Graph graph;
};

// The sweep's graph families. Weights mix constant, uniform and
// power-of-two specs so in-synch protocols and the gamma_w partition
// see non-trivial weight structure. Sizes are small: the sweep runs
// |subjects| x |families| x |portfolio| full protocol executions.
std::vector<Family> make_families(bool smoke) {
  Rng rng(2026);
  std::vector<Family> out;
  if (smoke) {
    out.push_back({"path6", path_graph(6, WeightSpec::uniform(1, 8), rng)});
    out.push_back(
        {"grid2x3", grid_graph(2, 3, WeightSpec::power_of_two(0, 3), rng)});
    out.push_back(
        {"gnp8", connected_gnp(8, 0.4, WeightSpec::uniform(1, 6), rng)});
    return out;
  }
  out.push_back({"path16", path_graph(16, WeightSpec::uniform(1, 9), rng)});
  out.push_back(
      {"grid4x5", grid_graph(4, 5, WeightSpec::power_of_two(0, 4), rng)});
  out.push_back(
      {"gnp14", connected_gnp(14, 0.3, WeightSpec::uniform(1, 12), rng)});
  out.push_back({"geo12", random_geometric(12, 0.5, 8, rng)});
  out.push_back({"lower8", lower_bound_family(8, 2)});
  return out;
}

int usage() {
  std::fprintf(stderr,
               "usage: csca_check [--smoke] [--subject=NAME] "
               "[--family=NAME] [--list] [-v]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool list = false;
  bool verbose = false;
  std::string only_subject;
  std::string only_family;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "-v") {
      verbose = true;
    } else if (arg.rfind("--subject=", 0) == 0) {
      only_subject = arg.substr(std::strlen("--subject="));
    } else if (arg.rfind("--family=", 0) == 0) {
      only_family = arg.substr(std::strlen("--family="));
    } else {
      return usage();
    }
  }

  try {
    const std::vector<CheckSubject> subjects = builtin_subjects();
    const std::vector<Family> families = make_families(smoke);
    const std::vector<ScheduleSpec> portfolio = default_portfolio();

    if (list) {
      std::printf("subjects:");
      for (const auto& s : subjects) std::printf(" %s", s.name.c_str());
      std::printf("\nfamilies:");
      for (const auto& f : families) std::printf(" %s", f.name.c_str());
      std::printf("\nschedules:");
      for (const auto& p : portfolio) std::printf(" %s", p.name.c_str());
      std::printf("\n");
      return 0;
    }

    int runs = 0;
    int sweeps = 0;
    std::vector<CheckFinding> findings;
    for (const CheckSubject& subject : subjects) {
      if (!only_subject.empty() && subject.name != only_subject) continue;
      for (const Family& family : families) {
        if (!only_family.empty() && family.name != only_family) continue;
        const ScheduleCheckReport report =
            check_subject(subject, family.graph, family.name, portfolio);
        runs += report.runs;
        ++sweeps;
        if (verbose || !report.ok()) {
          std::printf("%-10s %-8s %-3d schedules  %s  %s\n",
                      subject.name.c_str(), family.name.c_str(),
                      report.runs, report.ok() ? "ok " : "FAIL",
                      report.reference_digest.c_str());
        }
        findings.insert(findings.end(), report.findings.begin(),
                        report.findings.end());
      }
    }
    if (sweeps == 0) {
      std::fprintf(stderr, "csca_check: no (subject, family) matched "
                           "the filters\n");
      return 2;
    }

    for (const CheckFinding& f : findings) {
      std::printf("FINDING [%s] %s on %s under schedule %s (seed %llu): "
                  "%s\n",
                  f.kind.c_str(), f.subject.c_str(), f.graph.c_str(),
                  f.schedule.c_str(),
                  static_cast<unsigned long long>(f.seed),
                  f.detail.c_str());
    }
    std::printf("csca_check: %d runs (%d sweeps x %zu schedules), "
                "%zu finding(s)%s\n",
                runs, sweeps, portfolio.size(), findings.size(),
                findings.empty() ? " -- all clean" : "");
    return findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "csca_check: error: %s\n", e.what());
    return 2;
  }
}
