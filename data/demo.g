# demo network: light ring + two heavy shortcuts
9 11
0 1 2
1 2 2
2 3 2
3 4 2
4 5 2
5 6 2
6 7 2
7 8 2
8 0 2
0 4 30
2 7 25
